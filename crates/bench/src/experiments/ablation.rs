//! Ablations of design choices the paper motivates but does not sweep —
//! called out in DESIGN.md's per-experiment index:
//!
//! * **Request threshold** (§3.4.1): raising the threshold from zero to
//!   three piggybacked packets avoids granting ports to pairs whose entire
//!   backlog will have left through piggybacking by activation time. The
//!   over-scheduled slot counter makes the waste visible.
//! * **Round-robin rule rotation** (§3.6.1): on the parallel network the
//!   predefined-phase mapping rotates every epoch so a ToR pair's
//!   scheduling messages traverse a different physical link each epoch.
//!   Without rotation, a single failed link permanently silences the pairs
//!   whose messages it carried.

use std::sync::Arc;

use super::{Args, Experiment};
use crate::runs::{background_seeded, run_negotiator, SEED};
use crate::sweep::{Rendered, RunMeta, RunMetrics, RunResult, RunSpec};
use metrics::{report, Table};
use negotiator::{FailureAction, NegotiatorConfig, NegotiatorSim, SimOptions};
use topology::{NetworkConfig, TopologyKind};
use workload::FlowSizeDist;

/// Threshold ablation: goodput, mice FCT and over-scheduling waste as the
/// request threshold sweeps 0..6 piggyback packets — one run per
/// threshold.
pub struct AblThreshold;

const THRESHOLDS: [u64; 4] = [0, 1, 3, 6];

impl Experiment for AblThreshold {
    fn id(&self) -> &'static str {
        "abl-th"
    }
    fn artifact(&self) -> &'static str {
        "Ablation: request threshold vs over-scheduling waste"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        let net = NetworkConfig::paper_default();
        let trace = Arc::new(background_seeded(
            FlowSizeDist::hadoop(),
            1.0,
            &net,
            args.duration,
            args.seed,
        ));
        THRESHOLDS
            .iter()
            .enumerate()
            .map(|(index, &threshold)| {
                let net = net.clone();
                let trace = Arc::clone(&trace);
                let duration = args.duration;
                let workers = args.workers;
                let meta = RunMeta::new(self.id(), index, "nego/parallel", args)
                    .load(1.0)
                    .param("threshold_packets", threshold as f64);
                RunSpec::new(meta, move || {
                    let mut cfg = NegotiatorConfig::paper_default(net.clone());
                    cfg.request_threshold_packets = threshold;
                    let (mut rep, sim) = run_negotiator(
                        cfg,
                        TopologyKind::Parallel,
                        SimOptions::default(),
                        &trace,
                        duration,
                        workers,
                    );
                    let st = sim.stats();
                    let cells = vec![
                        report::us(rep.mice.p99_ns()),
                        format!("{:.3}", rep.goodput.normalized()),
                        st.overscheduled_slots.to_string(),
                        format!("{:.3}", st.scheduled_utilization()),
                    ];
                    RunMetrics::with_report(Rendered::Cells(cells), rep)
                        .push_extra("oversched_slots", st.overscheduled_slots as f64)
                        .push_extra("sched_util", st.scheduled_utilization())
                })
            })
            .collect()
    }
    fn render(&self, results: &[RunResult]) -> String {
        let mut table = Table::new(
            "Ablation — request threshold (piggyback packets), parallel, 100% load",
            &[
                "threshold",
                "99p_mice_us",
                "goodput",
                "oversched_slots",
                "sched_util",
            ],
        );
        for r in results {
            let mut cells = vec![format!("{}", r.param() as u64)];
            cells.extend(r.cells().iter().cloned());
            table.row(cells);
        }
        table.render()
    }
}

/// Rotation ablation: deliveries of a single pair under a targeted egress
/// link failure, with and without the §3.6.1 rotation. The rotated rule
/// keeps the pair's scheduling messages moving over surviving links; the
/// frozen rule can only recover through the fault detector's exclusions.
pub struct AblRotation;

/// The engine always rotates on the parallel network (the paper's
/// design); the "frozen" row uses thin-clos, whose single-path pairs
/// cannot rotate — exactly the §3.6.1 contrast.
const ROTATION_ROWS: &[(&str, TopologyKind)] = &[
    ("rotating (parallel)", TopologyKind::Parallel),
    ("frozen (thin-clos)", TopologyKind::ThinClos),
];

impl Experiment for AblRotation {
    fn id(&self) -> &'static str {
        "abl-rot"
    }
    fn artifact(&self) -> &'static str {
        "Ablation: predefined-rule rotation under failures"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        let horizon = 350_000;
        ROTATION_ROWS
            .iter()
            .enumerate()
            .map(|(index, &(label, kind))| {
                let meta = RunMeta::new(self.id(), index, label, args)
                    .seed(SEED)
                    .duration(horizon);
                RunSpec::new(meta, move || {
                    let net = NetworkConfig::paper_default();
                    let trace = workload::FlowTrace::new(vec![workload::Flow {
                        id: 0,
                        src: 3,
                        dst: 77,
                        bytes: 1_000_000_000,
                        arrival: 0,
                    }]);
                    let mut sim =
                        NegotiatorSim::new(NegotiatorConfig::paper_default(net.clone()), kind);
                    sim.schedule_failure(
                        50_000,
                        FailureAction::FailRandom {
                            ratio: 0.10,
                            seed: SEED,
                        },
                    );
                    sim.run(&trace, horizon);
                    let delivered_mb = sim.tracker().delivered_payload() as f64 / 1e6;
                    let lost = sim.stats().lost_packets;
                    let cells = vec![format!("{delivered_mb:.2}"), lost.to_string()];
                    RunMetrics::new(Rendered::Cells(cells))
                        .push_extra("delivered_mb", delivered_mb)
                        .push_extra("lost_packets", lost as f64)
                })
            })
            .collect()
    }
    fn render(&self, results: &[RunResult]) -> String {
        let mut table = Table::new(
            "Ablation — predefined-rule rotation under failures (single pair, 10% links down)",
            &["rotation", "delivered_mb_300us", "lost_packets"],
        );
        for r in results {
            let mut cells = vec![r.meta.system.clone()];
            cells.extend(r.cells().iter().cloned());
            table.row(cells);
        }
        table.render()
    }
}
