//! Ablations of design choices the paper motivates but does not sweep —
//! called out in DESIGN.md's per-experiment index:
//!
//! * **Request threshold** (§3.4.1): raising the threshold from zero to
//!   three piggybacked packets avoids granting ports to pairs whose entire
//!   backlog will have left through piggybacking by activation time. The
//!   over-scheduled slot counter makes the waste visible.
//! * **Round-robin rule rotation** (§3.6.1): on the parallel network the
//!   predefined-phase mapping rotates every epoch so a ToR pair's
//!   scheduling messages traverse a different physical link each epoch.
//!   Without rotation, a single failed link permanently silences the pairs
//!   whose messages it carried.

use super::Args;
use crate::runs::{background_seeded, run_negotiator, SEED};
use metrics::{report, Table};
use negotiator::{FailureAction, NegotiatorConfig, NegotiatorSim, SimOptions};
use topology::{NetworkConfig, TopologyKind};
use workload::FlowSizeDist;

/// Threshold ablation: goodput, mice FCT and over-scheduling waste as the
/// request threshold sweeps 0..6 piggyback packets.
pub fn ablation_threshold(args: &Args) -> String {
    let net = NetworkConfig::paper_default();
    let mut table = Table::new(
        "Ablation — request threshold (piggyback packets), parallel, 100% load",
        &["threshold", "99p_mice_us", "goodput", "oversched_slots", "sched_util"],
    );
    let trace = background_seeded(FlowSizeDist::hadoop(), 1.0, &net, args.duration, args.seed);
    for threshold in [0u64, 1, 3, 6] {
        let mut cfg = NegotiatorConfig::paper_default(net.clone());
        cfg.request_threshold_packets = threshold;
        let (mut rep, sim) = run_negotiator(
            cfg,
            TopologyKind::Parallel,
            SimOptions::default(),
            &trace,
            args.duration,
        );
        let st = sim.stats();
        table.row(vec![
            threshold.to_string(),
            report::us(rep.mice.p99_ns()),
            format!("{:.3}", rep.goodput.normalized()),
            st.overscheduled_slots.to_string(),
            format!("{:.3}", st.scheduled_utilization()),
        ]);
    }
    table.render()
}

/// Rotation ablation: deliveries of a single pair under a targeted egress
/// link failure, with and without the §3.6.1 rotation. The rotated rule
/// keeps the pair's scheduling messages moving over surviving links; the
/// frozen rule can only recover through the fault detector's exclusions.
pub fn ablation_rotation(_args: &Args) -> String {
    let net = NetworkConfig::paper_default();
    let trace = workload::FlowTrace::new(vec![workload::Flow {
        id: 0,
        src: 3,
        dst: 77,
        bytes: 1_000_000_000,
        arrival: 0,
    }]);
    let mut table = Table::new(
        "Ablation — predefined-rule rotation under failures (single pair, 10% links down)",
        &["rotation", "delivered_mb_300us", "lost_packets"],
    );
    // The engine always rotates on the parallel network (the paper's
    // design); the "frozen" row uses thin-clos, whose single-path pairs
    // cannot rotate — exactly the §3.6.1 contrast.
    for (label, kind) in [
        ("rotating (parallel)", TopologyKind::Parallel),
        ("frozen (thin-clos)", TopologyKind::ThinClos),
    ] {
        let mut sim = NegotiatorSim::new(NegotiatorConfig::paper_default(net.clone()), kind);
        sim.schedule_failure(
            50_000,
            FailureAction::FailRandom {
                ratio: 0.10,
                seed: SEED,
            },
        );
        sim.run(&trace, 350_000);
        table.row(vec![
            label.to_string(),
            format!("{:.2}", sim.tracker().delivered_payload() as f64 / 1e6),
            sim.stats().lost_packets.to_string(),
        ]);
    }
    table.render()
}
