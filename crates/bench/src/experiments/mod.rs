//! The experiment registry: one [`Experiment`] per table/figure of the
//! paper, each decomposed into independently schedulable runs so the
//! sweep engine (`crate::sweep`) can execute any mix of them in parallel.

use crate::sweep::{RunResult, RunSpec};
use sim::time::Nanos;

pub mod ablation;
pub mod appendix;
pub mod deepdive;
pub mod main_results;
pub mod micro;
pub mod observe;

/// Harness-wide parameters.
#[derive(Debug, Clone)]
pub struct Args {
    /// Simulated duration per run (paper: 30 ms; default here: 5 ms).
    pub duration: Nanos,
    /// Load points for the sweeps (paper: 10–100%).
    pub loads: Vec<f64>,
    /// Workload seed (vary to get error bars across runs).
    pub seed: u64,
    /// Intra-run shard workers per simulation (`--workers`). Purely a
    /// wall-clock knob: reports are byte-identical at any value, so it
    /// never appears in run metadata or output.
    pub workers: usize,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            duration: crate::runs::DEFAULT_DURATION,
            loads: vec![0.10, 0.25, 0.50, 0.75, 1.00],
            seed: crate::runs::SEED,
            workers: 1,
        }
    }
}

/// One paper artifact, split into schedulable runs.
///
/// `specs` expands the harness [`Args`] into the experiment's flat run
/// list; `render` reassembles the executed results (always handed back in
/// spec order) into the same text report a serial loop would have printed.
/// Implementations must keep both sides deterministic — the determinism
/// suite asserts `--jobs N` output is byte-identical to `--jobs 1`.
pub trait Experiment: Sync {
    /// Registry id (`fig9`, `table2`, ...).
    fn id(&self) -> &'static str;
    /// The paper artifact this reproduces.
    fn artifact(&self) -> &'static str;
    /// Expand into independently schedulable runs.
    fn specs(&self, args: &Args) -> Vec<RunSpec>;
    /// Reassemble executed runs (in spec order) into the text report.
    fn render(&self, results: &[RunResult]) -> String;
}

/// Every experiment of the harness, in the paper's presentation order.
pub static EXPERIMENTS: &[&dyn Experiment] = &[
    &micro::Table2,
    &micro::Fig6,
    &micro::Fig7a,
    &micro::Fig7b,
    &micro::Fig8,
    &main_results::Fig9,
    &main_results::Fig10,
    &main_results::Fig11,
    &deepdive::Fig12a,
    &deepdive::Fig12b,
    &deepdive::Fig13a,
    &deepdive::Fig13b,
    &deepdive::Fig13c,
    &appendix::Fig14,
    &appendix::Fig15,
    &appendix::Table3,
    &appendix::Table4,
    &appendix::Table5,
    &appendix::Table6,
    &observe::Fig17,
    &observe::Fig18,
    &observe::Fig19,
    &ablation::AblThreshold,
    &ablation::AblRotation,
];

/// Look an experiment up by id.
pub fn find_experiment(id: &str) -> Option<&'static dyn Experiment> {
    EXPERIMENTS.iter().copied().find(|e| e.id() == id)
}

/// Run one experiment by id on the calling thread, returning its rendered
/// report (compatibility shim over the sweep engine).
pub fn run_experiment(id: &str, args: &Args) -> Option<String> {
    Some(crate::sweep::run_one(find_experiment(id)?, args, 1).rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_findable() {
        let mut seen = std::collections::HashSet::new();
        for exp in EXPERIMENTS {
            assert!(seen.insert(exp.id()), "duplicate id {}", exp.id());
            assert_eq!(find_experiment(exp.id()).unwrap().id(), exp.id());
            assert!(!exp.artifact().is_empty());
        }
        assert_eq!(EXPERIMENTS.len(), 24);
        assert!(find_experiment("nope").is_none());
    }
}
