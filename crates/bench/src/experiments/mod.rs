//! The experiment registry: one entry per table/figure of the paper.

use sim::time::Nanos;

pub mod ablation;
pub mod appendix;
pub mod deepdive;
pub mod main_results;
pub mod micro;
pub mod observe;

/// Harness-wide parameters.
#[derive(Debug, Clone)]
pub struct Args {
    /// Simulated duration per run (paper: 30 ms; default here: 5 ms).
    pub duration: Nanos,
    /// Load points for the sweeps (paper: 10–100%).
    pub loads: Vec<f64>,
    /// Workload seed (vary to get error bars across runs).
    pub seed: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            duration: crate::runs::DEFAULT_DURATION,
            loads: vec![0.10, 0.25, 0.50, 0.75, 1.00],
            seed: crate::runs::SEED,
        }
    }
}

/// `(id, paper artifact, runner)` for every experiment.
pub const EXPERIMENTS: &[(&str, &str)] = &[
    ("table2", "Table 2: PB/PQ ablation, mice FCT at 100% load"),
    ("fig6", "Figure 6: CDF of mice FCT at 100% load"),
    ("fig7a", "Figure 7(a): incast finish time vs degree"),
    ("fig7b", "Figure 7(b): all-to-all goodput vs flow size"),
    ("fig8", "Figure 8: reconfiguration-delay sweep at 100% load"),
    ("fig9", "Figure 9: mice FCT and goodput vs load (main result)"),
    ("fig10", "Figure 10: bandwidth under link failure and recovery"),
    ("fig11", "Figure 11: FCT and goodput vs load without speedup"),
    ("fig12a", "Figure 12(a): predefined-phase timeslot sensitivity"),
    ("fig12b", "Figure 12(b): scheduled-phase length sensitivity"),
    ("fig13a", "Figure 13(a): Hadoop mixed with incasts"),
    ("fig13b", "Figure 13(b): web-search workload"),
    ("fig13c", "Figure 13(c): Google workload"),
    ("fig14", "Figure 14 (A.1): per-epoch match ratio vs theory"),
    ("fig15", "Figure 15 (A.2.1): iterative matching vs 2x speedup"),
    ("table3", "Table 3 (A.2.2): traffic-aware selective relay"),
    ("table4", "Table 4 (A.2.3): informative requests"),
    ("table5", "Table 5 (A.2.4): stateful scheduling"),
    ("table6", "Table 6 (A.2.5): ProjecToR-style scheduling"),
    ("fig17", "Figure 17 (A.3): receiver bandwidth under incast"),
    ("fig18", "Figure 18 (A.3): receiver bandwidth under all-to-all"),
    ("fig19", "Figure 19 (A.4): bandwidth occupation under failures"),
    ("abl-th", "Ablation: request threshold vs over-scheduling waste"),
    ("abl-rot", "Ablation: predefined-rule rotation under failures"),
];

/// Run one experiment by id, returning its rendered report.
pub fn run_experiment(id: &str, args: &Args) -> Option<String> {
    let out = match id {
        "table2" => micro::table2(args),
        "fig6" => micro::fig6(args),
        "fig7a" => micro::fig7a(args),
        "fig7b" => micro::fig7b(args),
        "fig8" => micro::fig8(args),
        "fig9" => main_results::fig9(args),
        "fig10" => main_results::fig10(args),
        "fig11" => main_results::fig11(args),
        "fig12a" => deepdive::fig12a(args),
        "fig12b" => deepdive::fig12b(args),
        "fig13a" => deepdive::fig13a(args),
        "fig13b" => deepdive::fig13b(args),
        "fig13c" => deepdive::fig13c(args),
        "fig14" => appendix::fig14(args),
        "fig15" => appendix::fig15(args),
        "table3" => appendix::table3(args),
        "table4" => appendix::table4(args),
        "table5" => appendix::table5(args),
        "table6" => appendix::table6(args),
        "fig17" => observe::fig17(args),
        "fig18" => observe::fig18(args),
        "fig19" => observe::fig19(args),
        "abl-th" => ablation::ablation_threshold(args),
        "abl-rot" => ablation::ablation_rotation(args),
        _ => return None,
    };
    Some(out)
}
