//! Microbenchmarks (§4.2): Table 2, Figures 6, 7(a), 7(b), 8.

use std::sync::Arc;

use super::{Args, Experiment};
use crate::runs::{background_seeded, run_negotiator, run_oblivious, SEED};
use crate::sweep::{Rendered, RunMeta, RunMetrics, RunResult, RunSpec};
use metrics::{report, RunReport, Table};
use negotiator::{NegotiatorConfig, SimOptions};
use oblivious::ObliviousConfig;
use topology::{NetworkConfig, TopologyKind};
use workload::{AllToAllWorkload, FlowSizeDist, IncastWorkload};

/// Table 2's PB/PQ toggle grid.
const TABLE2_CONFIGS: &[(&str, bool, bool)] = &[
    ("-", false, false),
    ("PB", true, false),
    ("PQ", false, true),
    ("PB and PQ", true, true),
];

/// Table 2: mice FCT at 100% load with piggybacking (PB) and priority
/// queues (PQ) independently toggled, in epochs (99p/average).
pub struct Table2;

impl Experiment for Table2 {
    fn id(&self) -> &'static str {
        "table2"
    }
    fn artifact(&self) -> &'static str {
        "Table 2: PB/PQ ablation, mice FCT at 100% load"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        let net = NetworkConfig::paper_default();
        let trace = Arc::new(background_seeded(
            FlowSizeDist::hadoop(),
            1.0,
            &net,
            args.duration,
            args.seed,
        ));
        let mut specs = Vec::new();
        for &(label, pb, pq) in TABLE2_CONFIGS {
            for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
                let net = net.clone();
                let trace = Arc::clone(&trace);
                let duration = args.duration;
                let workers = args.workers;
                let meta = RunMeta::new(
                    self.id(),
                    specs.len(),
                    format!("{label} / {}", kind.label()),
                    args,
                )
                .load(1.0);
                specs.push(RunSpec::new(meta, move || {
                    let mut cfg = NegotiatorConfig::paper_default(net.clone());
                    cfg.piggyback = pb;
                    cfg.priority_queues = pq;
                    let (mut rep, sim) =
                        run_negotiator(cfg, kind, SimOptions::default(), &trace, duration, workers);
                    let epoch = sim.epoch_len() as f64;
                    let cell = format!(
                        "{:.1}/{:.1}",
                        rep.mice.p99_ns() / epoch,
                        rep.mice.mean_ns() / epoch
                    );
                    RunMetrics::with_report(Rendered::Cells(vec![cell]), rep)
                        .push_extra("epoch_ns", epoch)
                }));
            }
        }
        specs
    }
    fn render(&self, results: &[RunResult]) -> String {
        let mut table = Table::new(
            "Table 2 — mice FCT in epochs (99p/avg) at 100% load",
            &["config", "parallel", "thin-clos"],
        );
        for (chunk, &(label, ..)) in results.chunks(2).zip(TABLE2_CONFIGS) {
            let mut cells = vec![label.to_string()];
            cells.extend(chunk.iter().map(|r| r.cells()[0].clone()));
            table.row(cells);
        }
        table.render()
    }
}

/// Figure 6: CDF of mice flow FCT at 100% load, PB+PQ enabled — one run
/// per topology, each rendering its own CDF block.
pub struct Fig6;

impl Experiment for Fig6 {
    fn id(&self) -> &'static str {
        "fig6"
    }
    fn artifact(&self) -> &'static str {
        "Figure 6: CDF of mice FCT at 100% load"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        let net = NetworkConfig::paper_default();
        let trace = Arc::new(background_seeded(
            FlowSizeDist::hadoop(),
            1.0,
            &net,
            args.duration,
            args.seed,
        ));
        [TopologyKind::Parallel, TopologyKind::ThinClos]
            .into_iter()
            .enumerate()
            .map(|(index, kind)| {
                let net = net.clone();
                let trace = Arc::clone(&trace);
                let duration = args.duration;
                let workers = args.workers;
                let meta =
                    RunMeta::new(self.id(), index, format!("nego/{}", kind.label()), args)
                        .load(1.0);
                RunSpec::new(meta, move || {
                    let cfg = NegotiatorConfig::paper_default(net.clone());
                    let (mut rep, sim) =
                        run_negotiator(cfg, kind, SimOptions::default(), &trace, duration, workers);
                    let epoch = sim.epoch_len();
                    let mut table = Table::new(
                        format!("Figure 6 — mice FCT CDF at 100% load, {}", kind.label()),
                        &["fct_us", "cdf"],
                    );
                    for (v, f) in rep.mice.cdf.curve(24) {
                        table.row(vec![report::us(v), format!("{f:.3}")]);
                    }
                    let within = rep.mice.cdf.fraction_below(2.0 * epoch as f64);
                    let block = format!(
                        "{}1st epoch ends at {} us, 2nd at {} us; fraction within 2 epochs: {:.3}\n\n",
                        table.render(),
                        report::us(epoch as f64),
                        report::us(2.0 * epoch as f64),
                        within
                    );
                    RunMetrics::with_report(Rendered::Block(block), rep)
                        .push_extra("epoch_ns", epoch as f64)
                        .push_extra("fraction_within_2_epochs", within)
                })
            })
            .collect()
    }
    fn render(&self, results: &[RunResult]) -> String {
        results.iter().map(|r| r.block()).collect()
    }
}

/// Figure 7(a): incast finish time vs degree, 1 KB flows — one run per
/// (degree, system).
pub struct Fig7a;

const FIG7A_DEGREES: [usize; 6] = [1, 10, 20, 30, 40, 50];
/// The three systems of Figures 7(a)/7(b)'s legends.
const BURST_SYSTEMS: &[&str] = &["nego/parallel", "nego/thin-clos", "oblivious/thin-clos"];
/// Generous burst horizon; engines exit early when done.
const FIG7A_HORIZON: u64 = 3_000_000;

/// Run one burst trace on system `sys` (index into [`BURST_SYSTEMS`]) and
/// return its finish time, if every flow completed.
fn burst_finish(
    sys: usize,
    net: &NetworkConfig,
    trace: &workload::FlowTrace,
    horizon: u64,
    workers: usize,
) -> Option<u64> {
    match sys {
        0 | 1 => {
            let kind = if sys == 0 {
                TopologyKind::Parallel
            } else {
                TopologyKind::ThinClos
            };
            let cfg = NegotiatorConfig::paper_default(net.clone());
            let (_, sim) =
                run_negotiator(cfg, kind, SimOptions::default(), trace, horizon, workers);
            RunReport::burst_finish_time(trace, sim.tracker())
        }
        _ => {
            let (_, sim) = run_oblivious(
                ObliviousConfig::paper_default(net.clone()),
                TopologyKind::ThinClos,
                trace,
                horizon,
                workers,
            );
            RunReport::burst_finish_time(trace, sim.tracker())
        }
    }
}

impl Experiment for Fig7a {
    fn id(&self) -> &'static str {
        "fig7a"
    }
    fn artifact(&self) -> &'static str {
        "Figure 7(a): incast finish time vs degree"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        let net = NetworkConfig::paper_default();
        let mut specs = Vec::new();
        for degree in FIG7A_DEGREES {
            let trace = Arc::new(
                IncastWorkload {
                    degree,
                    flow_bytes: 1_000,
                    n_tors: net.n_tors,
                    start: 10_000,
                }
                .generate(SEED),
            );
            for (sys, &name) in BURST_SYSTEMS.iter().enumerate() {
                let net = net.clone();
                let trace = Arc::clone(&trace);
                let workers = args.workers;
                let meta = RunMeta::new(self.id(), specs.len(), name, args)
                    .param("degree", degree as f64)
                    .seed(SEED)
                    .duration(FIG7A_HORIZON);
                specs.push(RunSpec::new(meta, move || {
                    let t = burst_finish(sys, &net, &trace, FIG7A_HORIZON, workers)
                        .expect("incast must complete");
                    RunMetrics::new(Rendered::Cells(vec![report::us(t as f64)]))
                        .push_extra("finish_ns", t as f64)
                }));
            }
        }
        specs
    }
    fn render(&self, results: &[RunResult]) -> String {
        let mut table = Table::new(
            "Figure 7(a) — incast finish time (us) vs degree",
            &[
                "degree",
                "nego/parallel",
                "nego/thin-clos",
                "oblivious/thin-clos",
            ],
        );
        for chunk in results.chunks(BURST_SYSTEMS.len()) {
            let mut cells = vec![format!("{}", chunk[0].param() as usize)];
            cells.extend(chunk.iter().map(|r| r.cells()[0].clone()));
            table.row(cells);
        }
        table.render()
    }
}

/// Figure 7(b): average per-ToR goodput (Gbps) during a synchronized
/// all-to-all of equal-size flows — one run per (flow size, system).
pub struct Fig7b;

const FIG7B_SIZES_KB: [u64; 5] = [1, 5, 30, 100, 500];

impl Experiment for Fig7b {
    fn id(&self) -> &'static str {
        "fig7b"
    }
    fn artifact(&self) -> &'static str {
        "Figure 7(b): all-to-all goodput vs flow size"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        let net = NetworkConfig::paper_default();
        let mut specs = Vec::new();
        for kb in FIG7B_SIZES_KB {
            let trace = Arc::new(
                AllToAllWorkload {
                    flow_bytes: kb * 1_000,
                    n_tors: net.n_tors,
                    start: 10_000,
                }
                .generate(),
            );
            // Horizon scales with the volume; engines exit early when done.
            let horizon = 10_000_000 + kb * 2_000_000;
            for (sys, &name) in BURST_SYSTEMS.iter().enumerate() {
                let net = net.clone();
                let trace = Arc::clone(&trace);
                let workers = args.workers;
                let meta = RunMeta::new(self.id(), specs.len(), name, args)
                    .param("flow_kb", kb as f64)
                    .duration(horizon);
                specs.push(RunSpec::new(meta, move || {
                    match burst_finish(sys, &net, &trace, horizon, workers) {
                        Some(t) if t > 0 => {
                            let gbps =
                                (trace.total_bytes() * 8) as f64 / t as f64 / net.n_tors as f64;
                            RunMetrics::new(Rendered::Cells(vec![format!("{gbps:.0}")]))
                                .push_extra("goodput_gbps", gbps)
                                .push_extra("finish_ns", t as f64)
                        }
                        _ => RunMetrics::new(Rendered::Cells(vec!["DNF".into()])),
                    }
                }));
            }
        }
        specs
    }
    fn render(&self, results: &[RunResult]) -> String {
        let mut table = Table::new(
            "Figure 7(b) — all-to-all average goodput (Gbps) vs flow size",
            &[
                "flow_kb",
                "nego/parallel",
                "nego/thin-clos",
                "oblivious/thin-clos",
            ],
        );
        for chunk in results.chunks(BURST_SYSTEMS.len()) {
            let mut cells = vec![format!("{}", chunk[0].param() as u64)];
            cells.extend(chunk.iter().map(|r| r.cells()[0].clone()));
            table.row(cells);
        }
        table.render()
    }
}

/// Figure 8: goodput and mice FCT at 100% load under longer end-to-end
/// reconfiguration delays — one run per (topology, delay).
pub struct Fig8;

const FIG8_GUARDS: [u64; 4] = [10, 20, 50, 100];

impl Experiment for Fig8 {
    fn id(&self) -> &'static str {
        "fig8"
    }
    fn artifact(&self) -> &'static str {
        "Figure 8: reconfiguration-delay sweep at 100% load"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        let net = NetworkConfig::paper_default();
        let trace = Arc::new(background_seeded(
            FlowSizeDist::hadoop(),
            1.0,
            &net,
            args.duration,
            args.seed,
        ));
        let mut specs = Vec::new();
        for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
            for guard in FIG8_GUARDS {
                let net = net.clone();
                let trace = Arc::clone(&trace);
                let duration = args.duration;
                let workers = args.workers;
                let meta = RunMeta::new(
                    self.id(),
                    specs.len(),
                    format!("nego/{}", kind.label()),
                    args,
                )
                .load(1.0)
                .param("reconf_ns", guard as f64);
                specs.push(RunSpec::new(meta, move || {
                    let mut cfg = NegotiatorConfig::paper_default(net.clone());
                    let pre_slots = pre_slots_for(&cfg, kind);
                    cfg.epoch = cfg.epoch.with_guardband(guard, pre_slots);
                    let (mut rep, _) =
                        run_negotiator(cfg, kind, SimOptions::default(), &trace, duration, workers);
                    let cells = vec![
                        report::ms(rep.mice.p99_ns()),
                        format!("{:.3}", rep.goodput.normalized()),
                    ];
                    RunMetrics::with_report(Rendered::Cells(cells), rep)
                }));
            }
        }
        specs
    }
    fn render(&self, results: &[RunResult]) -> String {
        let mut out = String::new();
        for (chunk, kind) in results
            .chunks(FIG8_GUARDS.len())
            .zip([TopologyKind::Parallel, TopologyKind::ThinClos])
        {
            let mut table = Table::new(
                format!(
                    "Figure 8 — reconfiguration-delay sweep at 100% load, {}",
                    kind.label()
                ),
                &["reconf_ns", "99p_fct_ms", "goodput"],
            );
            for r in chunk {
                let mut cells = vec![format!("{}", r.param() as u64)];
                cells.extend(r.cells().iter().cloned());
                table.row(cells);
            }
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }
}

/// Predefined-phase slot count of `kind` at `cfg`'s scale (§3.3.1:
/// `⌈(N−1)/S⌉` for the parallel network, `W = N/S` for thin-clos).
pub fn pre_slots_for(cfg: &NegotiatorConfig, kind: TopologyKind) -> usize {
    match kind {
        TopologyKind::Parallel => (cfg.net.n_tors - 1).div_ceil(cfg.net.n_ports),
        TopologyKind::ThinClos => cfg.net.n_tors / cfg.net.n_ports,
    }
}
