//! Microbenchmarks (§4.2): Table 2, Figures 6, 7(a), 7(b), 8.

use super::Args;
use crate::runs::{background_seeded, run_negotiator, run_oblivious, SEED};
use metrics::{report, RunReport, Table};
use negotiator::{NegotiatorConfig, SimOptions};
use oblivious::ObliviousConfig;
use topology::{NetworkConfig, TopologyKind};
use workload::{AllToAllWorkload, FlowSizeDist, IncastWorkload};

/// Table 2: mice FCT at 100% load with piggybacking (PB) and priority
/// queues (PQ) independently toggled, in epochs (99p/average).
pub fn table2(args: &Args) -> String {
    let net = NetworkConfig::paper_default();
    let mut table = Table::new(
        "Table 2 — mice FCT in epochs (99p/avg) at 100% load",
        &["config", "parallel", "thin-clos"],
    );
    let trace = background_seeded(FlowSizeDist::hadoop(), 1.0, &net, args.duration, args.seed);
    for (label, pb, pq) in [
        ("-", false, false),
        ("PB", true, false),
        ("PQ", false, true),
        ("PB and PQ", true, true),
    ] {
        let mut cells = vec![label.to_string()];
        for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
            let mut cfg = NegotiatorConfig::paper_default(net.clone());
            cfg.piggyback = pb;
            cfg.priority_queues = pq;
            let (mut rep, sim) =
                run_negotiator(cfg, kind, SimOptions::default(), &trace, args.duration);
            let epoch = sim.epoch_len() as f64;
            cells.push(format!(
                "{:.1}/{:.1}",
                rep.mice.p99_ns() / epoch,
                rep.mice.mean_ns() / epoch
            ));
        }
        table.row(cells);
    }
    table.render()
}

/// Figure 6: CDF of mice flow FCT at 100% load, PB+PQ enabled.
pub fn fig6(args: &Args) -> String {
    let net = NetworkConfig::paper_default();
    let trace = background_seeded(FlowSizeDist::hadoop(), 1.0, &net, args.duration, args.seed);
    let mut out = String::new();
    for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
        let cfg = NegotiatorConfig::paper_default(net.clone());
        let (mut rep, sim) =
            run_negotiator(cfg, kind, SimOptions::default(), &trace, args.duration);
        let epoch = sim.epoch_len();
        let mut table = Table::new(
            format!("Figure 6 — mice FCT CDF at 100% load, {}", kind.label()),
            &["fct_us", "cdf"],
        );
        for (v, f) in rep.mice.cdf.curve(24) {
            table.row(vec![report::us(v), format!("{f:.3}")]);
        }
        out.push_str(&table.render());
        out.push_str(&format!(
            "1st epoch ends at {} us, 2nd at {} us; fraction within 2 epochs: {:.3}\n\n",
            report::us(epoch as f64),
            report::us(2.0 * epoch as f64),
            rep.mice.cdf.fraction_below(2.0 * epoch as f64)
        ));
    }
    out
}

/// Figure 7(a): incast finish time vs degree, 1 KB flows.
pub fn fig7a(_args: &Args) -> String {
    let net = NetworkConfig::paper_default();
    let mut table = Table::new(
        "Figure 7(a) — incast finish time (us) vs degree",
        &["degree", "nego/parallel", "nego/thin-clos", "oblivious/thin-clos"],
    );
    for degree in [1usize, 10, 20, 30, 40, 50] {
        let trace = IncastWorkload {
            degree,
            flow_bytes: 1_000,
            n_tors: net.n_tors,
            start: 10_000,
        }
        .generate(SEED);
        let horizon = 3_000_000; // plenty; engines exit early when done
        let mut cells = vec![degree.to_string()];
        for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
            let cfg = NegotiatorConfig::paper_default(net.clone());
            let (_, sim) = run_negotiator(cfg, kind, SimOptions::default(), &trace, horizon);
            let t = RunReport::burst_finish_time(&trace, sim.tracker())
                .expect("incast must complete");
            cells.push(report::us(t as f64));
        }
        let (_, sim) = run_oblivious(
            ObliviousConfig::paper_default(net.clone()),
            TopologyKind::ThinClos,
            &trace,
            horizon,
        );
        let t = RunReport::burst_finish_time(&trace, sim.tracker()).expect("incast completes");
        cells.push(report::us(t as f64));
        table.row(cells);
    }
    table.render()
}

/// Figure 7(b): average per-ToR goodput (Gbps) during a synchronized
/// all-to-all of equal-size flows.
pub fn fig7b(_args: &Args) -> String {
    let net = NetworkConfig::paper_default();
    let mut table = Table::new(
        "Figure 7(b) — all-to-all average goodput (Gbps) vs flow size",
        &["flow_kb", "nego/parallel", "nego/thin-clos", "oblivious/thin-clos"],
    );
    for kb in [1u64, 5, 30, 100, 500] {
        let trace = AllToAllWorkload {
            flow_bytes: kb * 1_000,
            n_tors: net.n_tors,
            start: 10_000,
        }
        .generate();
        // Horizon scales with the volume; engines exit early when done.
        let horizon = 10_000_000 + kb * 2_000_000;
        let mut cells = vec![kb.to_string()];
        let goodput = |finish: Option<u64>| -> String {
            match finish {
                Some(t) if t > 0 => {
                    let gbps = (trace.total_bytes() * 8) as f64
                        / t as f64
                        / net.n_tors as f64;
                    format!("{gbps:.0}")
                }
                _ => "DNF".into(),
            }
        };
        for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
            let cfg = NegotiatorConfig::paper_default(net.clone());
            let (_, sim) = run_negotiator(cfg, kind, SimOptions::default(), &trace, horizon);
            cells.push(goodput(RunReport::burst_finish_time(&trace, sim.tracker())));
        }
        let (_, sim) = run_oblivious(
            ObliviousConfig::paper_default(net.clone()),
            TopologyKind::ThinClos,
            &trace,
            horizon,
        );
        cells.push(goodput(RunReport::burst_finish_time(&trace, sim.tracker())));
        table.row(cells);
    }
    table.render()
}

/// Figure 8: goodput and mice FCT at 100% load under longer end-to-end
/// reconfiguration delays, scheduled phase rescaled to hold the overhead.
pub fn fig8(args: &Args) -> String {
    let net = NetworkConfig::paper_default();
    let trace = background_seeded(FlowSizeDist::hadoop(), 1.0, &net, args.duration, args.seed);
    let mut out = String::new();
    for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
        let mut table = Table::new(
            format!(
                "Figure 8 — reconfiguration-delay sweep at 100% load, {}",
                kind.label()
            ),
            &["reconf_ns", "99p_fct_ms", "goodput"],
        );
        for guard in [10u64, 20, 50, 100] {
            let mut cfg = NegotiatorConfig::paper_default(net.clone());
            let pre_slots = pre_slots_for(&cfg, kind);
            cfg.epoch = cfg.epoch.with_guardband(guard, pre_slots);
            let (mut rep, _) =
                run_negotiator(cfg, kind, SimOptions::default(), &trace, args.duration);
            table.row(vec![
                guard.to_string(),
                report::ms(rep.mice.p99_ns()),
                format!("{:.3}", rep.goodput.normalized()),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

/// Predefined-phase slot count of `kind` at `cfg`'s scale (§3.3.1:
/// `⌈(N−1)/S⌉` for the parallel network, `W = N/S` for thin-clos).
pub fn pre_slots_for(cfg: &NegotiatorConfig, kind: TopologyKind) -> usize {
    match kind {
        TopologyKind::Parallel => (cfg.net.n_tors - 1).div_ceil(cfg.net.n_ports),
        TopologyKind::ThinClos => cfg.net.n_tors / cfg.net.n_ports,
    }
}
