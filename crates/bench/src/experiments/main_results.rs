//! Main results (§4.3): Figures 9, 10 and the no-speedup Figure 11.

use std::sync::Arc;

use super::{Args, Experiment};
use crate::runs::{background_seeded, run_negotiator, run_oblivious};
use crate::sweep::{Rendered, RunMeta, RunMetrics, RunResult, RunSpec};
use metrics::{report, RunReport, Table};
use negotiator::{FailureAction, NegotiatorConfig, NegotiatorSim, SimOptions};
use oblivious::ObliviousConfig;
use sim::time::Nanos;
use topology::{NetworkConfig, TopologyKind};
use workload::{FlowSizeDist, FlowTrace};

/// The six systems of Figure 9's legend.
const SYSTEMS: &[(&str, Sys)] = &[
    ("nego/parallel", Sys::Nego(TopologyKind::Parallel, true)),
    (
        "nego/parallel w/o PQ",
        Sys::Nego(TopologyKind::Parallel, false),
    ),
    ("nego/thin-clos", Sys::Nego(TopologyKind::ThinClos, true)),
    (
        "nego/thin-clos w/o PQ",
        Sys::Nego(TopologyKind::ThinClos, false),
    ),
    ("oblivious/thin-clos", Sys::Oblv(true)),
    ("oblivious/thin-clos w/o PQ", Sys::Oblv(false)),
];

const SWEEP_HEADERS: &[&str] = &[
    "load",
    "nego/par",
    "par w/o PQ",
    "nego/thin",
    "thin w/o PQ",
    "oblv",
    "oblv w/o PQ",
];

#[derive(Clone, Copy)]
enum Sys {
    Nego(TopologyKind, bool),
    Oblv(bool),
}

/// One (system, trace) run.
fn measure(
    sys: Sys,
    net: &NetworkConfig,
    trace: &FlowTrace,
    duration: Nanos,
    workers: usize,
) -> RunReport {
    match sys {
        Sys::Nego(kind, pq) => {
            let mut cfg = NegotiatorConfig::paper_default(net.clone());
            cfg.priority_queues = pq;
            let (rep, _) =
                run_negotiator(cfg, kind, SimOptions::default(), trace, duration, workers);
            rep
        }
        Sys::Oblv(pq) => {
            let mut cfg = ObliviousConfig::paper_default(net.clone());
            cfg.priority_queues = pq;
            let (rep, _) = run_oblivious(cfg, TopologyKind::ThinClos, trace, duration, workers);
            rep
        }
    }
}

/// Specs for the load sweep shared by Figures 9, 11, 13(b), 13(c): one run
/// per (load, system), the per-load trace `Arc`-shared across systems.
pub(super) fn load_sweep_specs(
    experiment: &'static str,
    net: NetworkConfig,
    dist: FlowSizeDist,
    args: &Args,
) -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for &load in &args.loads {
        let trace = Arc::new(background_seeded(
            dist.clone(),
            load,
            &net,
            args.duration,
            args.seed,
        ));
        for &(name, sys) in SYSTEMS {
            let net = net.clone();
            let trace = Arc::clone(&trace);
            let duration = args.duration;
            let workers = args.workers;
            let meta = RunMeta::new(experiment, specs.len(), name, args).load(load);
            specs.push(RunSpec::new(meta, move || {
                let mut rep = measure(sys, &net, &trace, duration, workers);
                let cells = vec![
                    format!("{:.4}", rep.mice.p99_ns() / 1e6),
                    format!("{:.3}", rep.goodput.normalized()),
                ];
                RunMetrics::with_report(Rendered::Cells(cells), rep)
            }));
        }
    }
    specs
}

/// Render for [`load_sweep_specs`]: an FCT table and a goodput table.
pub(super) fn load_sweep_render(title: &str, results: &[RunResult]) -> String {
    let mut fct = Table::new(format!("{title} — 99p mice FCT (ms)"), SWEEP_HEADERS);
    let mut gp = Table::new(format!("{title} — normalized goodput"), SWEEP_HEADERS);
    for chunk in results.chunks(SYSTEMS.len()) {
        let mut fct_cells = vec![report::pct(chunk[0].load())];
        let mut gp_cells = vec![report::pct(chunk[0].load())];
        for r in chunk {
            fct_cells.push(r.cells()[0].clone());
            gp_cells.push(r.cells()[1].clone());
        }
        fct.row(fct_cells);
        gp.row(gp_cells);
    }
    format!("{}\n{}", fct.render(), gp.render())
}

/// Figure 9: FCT and goodput vs load on the Hadoop workload.
pub struct Fig9;

impl Experiment for Fig9 {
    fn id(&self) -> &'static str {
        "fig9"
    }
    fn artifact(&self) -> &'static str {
        "Figure 9: mice FCT and goodput vs load (main result)"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        load_sweep_specs(
            self.id(),
            NetworkConfig::paper_default(),
            FlowSizeDist::hadoop(),
            args,
        )
    }
    fn render(&self, results: &[RunResult]) -> String {
        load_sweep_render("Figure 9", results)
    }
}

/// Figure 11: the same sweep with no uplink speedup (§4.4).
pub struct Fig11;

impl Experiment for Fig11 {
    fn id(&self) -> &'static str {
        "fig11"
    }
    fn artifact(&self) -> &'static str {
        "Figure 11: FCT and goodput vs load without speedup"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        load_sweep_specs(
            self.id(),
            NetworkConfig::paper_no_speedup(),
            FlowSizeDist::hadoop(),
            args,
        )
    }
    fn render(&self, results: &[RunResult]) -> String {
        load_sweep_render("Figure 11 (no speedup)", results)
    }
}

/// Figure 10: bandwidth usage through simultaneous link failures and
/// recovery on the parallel network — one run per failure ratio.
pub struct Fig10;

const FIG10_RATIOS: [f64; 5] = [0.02, 0.04, 0.06, 0.08, 0.10];

impl Experiment for Fig10 {
    fn id(&self) -> &'static str {
        "fig10"
    }
    fn artifact(&self) -> &'static str {
        "Figure 10: bandwidth under link failure and recovery"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        let net = NetworkConfig::paper_default();
        let trace = Arc::new(background_seeded(
            FlowSizeDist::hadoop(),
            1.0,
            &net,
            args.duration,
            args.seed,
        ));
        let fail_at = args.duration / 3;
        let repair_at = 2 * args.duration / 3;
        // Goodput ramps while backlogs build at 100% load, so each phase is
        // measured over the window just before its end — the most settled
        // part.
        let window = args.duration / 8;
        FIG10_RATIOS
            .iter()
            .enumerate()
            .map(|(index, &ratio)| {
                let net = net.clone();
                let trace = Arc::clone(&trace);
                let duration = args.duration;
                let workers = args.workers;
                let meta = RunMeta::new(self.id(), index, "nego/parallel", args)
                    .load(1.0)
                    .param("failure_ratio", ratio);
                RunSpec::new(meta, move || {
                    let mut sim = NegotiatorSim::with_options(
                        NegotiatorConfig::paper_default(net.clone()),
                        TopologyKind::Parallel,
                        SimOptions {
                            total_rx_window: Some(20_000),
                            workers,
                            ..SimOptions::default()
                        },
                    );
                    sim.schedule_failure(
                        fail_at,
                        FailureAction::FailRandom {
                            ratio,
                            seed: crate::runs::SEED ^ (ratio * 1000.0) as u64,
                        },
                    );
                    sim.schedule_failure(repair_at, FailureAction::RepairAll);
                    sim.run(&trace, duration);
                    let rx = sim.total_rx().expect("series enabled");
                    let pre = rx.mean_gbps(fail_at - window, fail_at);
                    let during = rx.mean_gbps(repair_at - window, repair_at);
                    let post = rx.mean_gbps(duration - window, duration);
                    let cells = vec![
                        format!("{:.3}", during / pre),
                        format!("{:.3}", during / post),
                    ];
                    RunMetrics::new(Rendered::Cells(cells))
                        .push_extra("bw_pre_gbps", pre)
                        .push_extra("bw_during_gbps", during)
                        .push_extra("bw_post_gbps", post)
                })
            })
            .collect()
    }
    fn render(&self, results: &[RunResult]) -> String {
        let mut table = Table::new(
            "Figure 10 — bandwidth ratios across failure and recovery (100% load, parallel)",
            &[
                "failure_ratio",
                "BW_post_failure/BW_pre",
                "BW_pre_recovery/BW_post_recovery",
            ],
        );
        for r in results {
            let mut cells = vec![report::pct(r.param())];
            cells.extend(r.cells().iter().cloned());
            table.row(cells);
        }
        table.render()
    }
}
