//! Main results (§4.3): Figures 9, 10 and the no-speedup Figure 11.

use super::Args;
use crate::runs::{background_seeded, run_negotiator, run_oblivious};
use metrics::{report, Table};
use negotiator::{FailureAction, NegotiatorConfig, NegotiatorSim, SimOptions};
use oblivious::ObliviousConfig;
use sim::time::Nanos;
use topology::{NetworkConfig, TopologyKind};
use workload::{FlowSizeDist, FlowTrace};

/// The six systems of Figure 9's legend.
const SYSTEMS: &[(&str, Sys)] = &[
    ("nego/parallel", Sys::Nego(TopologyKind::Parallel, true)),
    ("nego/parallel w/o PQ", Sys::Nego(TopologyKind::Parallel, false)),
    ("nego/thin-clos", Sys::Nego(TopologyKind::ThinClos, true)),
    ("nego/thin-clos w/o PQ", Sys::Nego(TopologyKind::ThinClos, false)),
    ("oblivious/thin-clos", Sys::Oblv(true)),
    ("oblivious/thin-clos w/o PQ", Sys::Oblv(false)),
];

#[derive(Clone, Copy)]
enum Sys {
    Nego(TopologyKind, bool),
    Oblv(bool),
}

/// One (system, trace) run → (99p mice FCT ms, normalized goodput).
fn measure(sys: Sys, net: &NetworkConfig, trace: &FlowTrace, duration: Nanos) -> (f64, f64) {
    match sys {
        Sys::Nego(kind, pq) => {
            let mut cfg = NegotiatorConfig::paper_default(net.clone());
            cfg.priority_queues = pq;
            let (mut rep, _) =
                run_negotiator(cfg, kind, SimOptions::default(), trace, duration);
            (rep.mice.p99_ns() / 1e6, rep.goodput.normalized())
        }
        Sys::Oblv(pq) => {
            let mut cfg = ObliviousConfig::paper_default(net.clone());
            cfg.priority_queues = pq;
            let (mut rep, _) = run_oblivious(cfg, TopologyKind::ThinClos, trace, duration);
            (rep.mice.p99_ns() / 1e6, rep.goodput.normalized())
        }
    }
}

/// The load sweep shared by Figures 9, 11, 13(b), 13(c).
pub fn load_sweep(title: &str, net: &NetworkConfig, dist: FlowSizeDist, args: &Args) -> String {
    let mut fct = Table::new(
        format!("{title} — 99p mice FCT (ms)"),
        &["load", "nego/par", "par w/o PQ", "nego/thin", "thin w/o PQ", "oblv", "oblv w/o PQ"],
    );
    let mut gp = Table::new(
        format!("{title} — normalized goodput"),
        &["load", "nego/par", "par w/o PQ", "nego/thin", "thin w/o PQ", "oblv", "oblv w/o PQ"],
    );
    for &load in &args.loads {
        let trace = background_seeded(dist.clone(), load, net, args.duration, args.seed);
        let mut fct_cells = vec![report::pct(load)];
        let mut gp_cells = vec![report::pct(load)];
        for &(_, sys) in SYSTEMS {
            let (f, g) = measure(sys, net, &trace, args.duration);
            fct_cells.push(format!("{f:.4}"));
            gp_cells.push(format!("{g:.3}"));
        }
        fct.row(fct_cells);
        gp.row(gp_cells);
    }
    format!("{}\n{}", fct.render(), gp.render())
}

/// Figure 9: FCT and goodput vs load on the Hadoop workload.
pub fn fig9(args: &Args) -> String {
    load_sweep(
        "Figure 9",
        &NetworkConfig::paper_default(),
        FlowSizeDist::hadoop(),
        args,
    )
}

/// Figure 11: the same sweep with no uplink speedup (§4.4).
pub fn fig11(args: &Args) -> String {
    load_sweep(
        "Figure 11 (no speedup)",
        &NetworkConfig::paper_no_speedup(),
        FlowSizeDist::hadoop(),
        args,
    )
}

/// Figure 10: bandwidth usage through simultaneous link failures and
/// recovery on the parallel network.
pub fn fig10(args: &Args) -> String {
    let net = NetworkConfig::paper_default();
    let trace = background_seeded(FlowSizeDist::hadoop(), 1.0, &net, args.duration, args.seed);
    let mut table = Table::new(
        "Figure 10 — bandwidth ratios across failure and recovery (100% load, parallel)",
        &[
            "failure_ratio",
            "BW_post_failure/BW_pre",
            "BW_pre_recovery/BW_post_recovery",
        ],
    );
    let fail_at = args.duration / 3;
    let repair_at = 2 * args.duration / 3;
    // Goodput ramps while backlogs build at 100% load, so each phase is
    // measured over the window just before its end — the most settled part.
    let window = args.duration / 8;
    for ratio in [0.02, 0.04, 0.06, 0.08, 0.10] {
        let mut sim = NegotiatorSim::with_options(
            NegotiatorConfig::paper_default(net.clone()),
            TopologyKind::Parallel,
            SimOptions {
                total_rx_window: Some(20_000),
                ..SimOptions::default()
            },
        );
        sim.schedule_failure(
            fail_at,
            FailureAction::FailRandom {
                ratio,
                seed: crate::runs::SEED ^ (ratio * 1000.0) as u64,
            },
        );
        sim.schedule_failure(repair_at, FailureAction::RepairAll);
        sim.run(&trace, args.duration);
        let rx = sim.total_rx().expect("series enabled");
        let pre = rx.mean_gbps(fail_at - window, fail_at);
        let during = rx.mean_gbps(repair_at - window, repair_at);
        let post = rx.mean_gbps(args.duration - window, args.duration);
        table.row(vec![
            report::pct(ratio),
            format!("{:.3}", during / pre),
            format!("{:.3}", during / post),
        ]);
    }
    table.render()
}
