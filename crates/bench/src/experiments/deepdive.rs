//! Deep-dive results (§4.4): parameter sensitivity (Figure 12) and the
//! alternative workloads (Figure 13).

use super::main_results::load_sweep;
use super::Args;
use crate::runs::{background_seeded, run_negotiator, SEED};
use metrics::{report, RunReport, Table};
use negotiator::{NegotiatorConfig, NegotiatorSim, SimOptions};
use oblivious::{ObliviousConfig, ObliviousSim};
use topology::{NetworkConfig, TopologyKind};
use workload::{FlowSizeDist, MixedWorkload, WorkloadSpec};

/// Figure 12(a): predefined-phase timeslot duration sweep (affects how
/// much data one piggybacked packet carries), parallel network.
pub fn fig12a(args: &Args) -> String {
    let net = NetworkConfig::paper_default();
    let mut table = Table::new(
        "Figure 12(a) — 99p mice FCT (us) vs predefined timeslot duration, parallel",
        &["load", "20ns", "30ns", "60ns", "90ns", "120ns"],
    );
    for &load in &args.loads {
        let trace = background_seeded(FlowSizeDist::hadoop(), load, &net, args.duration, args.seed);
        let mut cells = vec![report::pct(load)];
        for slot_ns in [20u64, 30, 60, 90, 120] {
            let mut cfg = NegotiatorConfig::paper_default(net.clone());
            cfg.epoch.predefined_window = slot_ns - cfg.epoch.guardband;
            let (mut rep, _) = run_negotiator(
                cfg,
                TopologyKind::Parallel,
                SimOptions::default(),
                &trace,
                args.duration,
            );
            cells.push(report::us(rep.mice.p99_ns()));
        }
        table.row(cells);
    }
    table.render()
}

/// Figure 12(b): scheduled-phase length sweep, parallel network.
pub fn fig12b(args: &Args) -> String {
    let net = NetworkConfig::paper_default();
    let mut fct = Table::new(
        "Figure 12(b) — 99p mice FCT (ms) vs scheduled-phase slots, parallel",
        &["load", "10", "30", "50", "100", "500"],
    );
    let mut gp = Table::new(
        "Figure 12(b) — normalized goodput vs scheduled-phase slots, parallel",
        &["load", "10", "30", "50", "100", "500"],
    );
    for &load in &args.loads {
        let trace = background_seeded(FlowSizeDist::hadoop(), load, &net, args.duration, args.seed);
        let mut fct_cells = vec![report::pct(load)];
        let mut gp_cells = vec![report::pct(load)];
        for slots in [10usize, 30, 50, 100, 500] {
            let mut cfg = NegotiatorConfig::paper_default(net.clone());
            cfg.epoch.scheduled_slots = slots;
            let (mut rep, _) = run_negotiator(
                cfg,
                TopologyKind::Parallel,
                SimOptions::default(),
                &trace,
                args.duration,
            );
            fct_cells.push(report::ms(rep.mice.p99_ns()));
            gp_cells.push(format!("{:.3}", rep.goodput.normalized()));
        }
        fct.row(fct_cells);
        gp.row(gp_cells);
    }
    format!("{}\n{}", fct.render(), gp.render())
}

/// Figure 13(a): Hadoop background randomly mixed with degree-20, 1 KB
/// incasts taking 2% of the downlink aggregate.
pub fn fig13a(args: &Args) -> String {
    let net = NetworkConfig::paper_default();
    let mut table = Table::new(
        "Figure 13(a) — Hadoop + incast mix: background 99p mice FCT (ms) / mean incast finish (ms) / goodput",
        &["load", "nego/parallel", "nego/thin-clos", "oblivious/thin-clos"],
    );
    for &load in &args.loads {
        let mixed = MixedWorkload {
            background: WorkloadSpec {
                dist: FlowSizeDist::hadoop(),
                load,
                n_tors: net.n_tors,
                host_bps: net.host_bandwidth.bps(),
            },
            incast_degree: 20,
            incast_flow_bytes: 1_000,
            incast_load: 0.02,
        };
        let (trace, tags) = mixed.generate(args.duration, SEED);
        let bg_tags: Vec<bool> = tags.iter().map(|&t| !t).collect();
        let mut cells = vec![report::pct(load)];

        // Mean incast finish: group tagged flows by (arrival, dst) and take
        // the latest completion per burst. Bursts arriving in the last
        // stretch of the run cannot finish before the horizon and are
        // excluded; an unfinished earlier burst counts as the full horizon.
        let cutoff = args.duration.saturating_sub(args.duration / 5);
        let incast_finish = |tracker: &metrics::FlowTracker| -> Option<f64> {
            let mut bursts: std::collections::HashMap<(u64, usize), u64> = Default::default();
            for (f, &tag) in trace.flows().iter().zip(&tags) {
                if !tag || f.arrival >= cutoff {
                    continue;
                }
                let finish = match tracker.completion(f.id) {
                    Some(done) => done - f.arrival,
                    None => args.duration - f.arrival, // unfinished: lower bound
                };
                let e = bursts.entry((f.arrival, f.dst)).or_insert(0);
                *e = (*e).max(finish);
            }
            if bursts.is_empty() {
                return None;
            }
            Some(bursts.values().sum::<u64>() as f64 / bursts.len() as f64)
        };

        for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
            let cfg = NegotiatorConfig::paper_default(net.clone());
            let mut sim = NegotiatorSim::new(cfg, kind);
            sim.run(&trace, args.duration);
            let mut bg = sim.report_subset(&trace, &bg_tags);
            let overall = RunReport::build(
                &trace,
                sim.tracker(),
                args.duration,
                net.n_tors,
                net.host_bandwidth.bps(),
                None,
            );
            cells.push(format!(
                "{}/{}/{:.3}",
                report::ms(bg.mice.p99_ns()),
                incast_finish(sim.tracker()).map_or("DNF".into(), report::ms),
                overall.goodput.normalized()
            ));
        }
        let mut sim = ObliviousSim::new(
            ObliviousConfig::paper_default(net.clone()),
            TopologyKind::ThinClos,
        );
        sim.run(&trace, args.duration);
        let mut bg = sim.report_subset(&trace, &bg_tags);
        let overall = RunReport::build(
            &trace,
            sim.tracker(),
            args.duration,
            net.n_tors,
            net.host_bandwidth.bps(),
            None,
        );
        cells.push(format!(
            "{}/{}/{:.3}",
            report::ms(bg.mice.p99_ns()),
            incast_finish(sim.tracker()).map_or("DNF".into(), report::ms),
            overall.goodput.normalized()
        ));
        table.row(cells);
    }
    table.render()
}

/// Figure 13(b): the heavier web-search workload.
pub fn fig13b(args: &Args) -> String {
    load_sweep(
        "Figure 13(b) (web search)",
        &NetworkConfig::paper_default(),
        FlowSizeDist::web_search(),
        args,
    )
}

/// Figure 13(c): the lighter Google workload.
pub fn fig13c(args: &Args) -> String {
    load_sweep(
        "Figure 13(c) (Google)",
        &NetworkConfig::paper_default(),
        FlowSizeDist::google(),
        args,
    )
}
