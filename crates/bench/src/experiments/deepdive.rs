//! Deep-dive results (§4.4): parameter sensitivity (Figure 12) and the
//! alternative workloads (Figure 13).

use std::sync::Arc;

use super::main_results::{load_sweep_render, load_sweep_specs};
use super::{Args, Experiment};
use crate::runs::{background_seeded, run_negotiator, SEED};
use crate::sweep::{Rendered, RunMeta, RunMetrics, RunResult, RunSpec};
use metrics::{report, RunReport, Table};
use negotiator::{NegotiatorConfig, NegotiatorSim, SimOptions};
use oblivious::{ObliviousConfig, ObliviousSim};
use topology::{NetworkConfig, TopologyKind};
use workload::{FlowSizeDist, FlowTrace, MixedWorkload, WorkloadSpec};

/// Figure 12(a): predefined-phase timeslot duration sweep (affects how
/// much data one piggybacked packet carries), parallel network.
pub struct Fig12a;

const FIG12A_SLOTS_NS: [u64; 5] = [20, 30, 60, 90, 120];

impl Experiment for Fig12a {
    fn id(&self) -> &'static str {
        "fig12a"
    }
    fn artifact(&self) -> &'static str {
        "Figure 12(a): predefined-phase timeslot sensitivity"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        let net = NetworkConfig::paper_default();
        let mut specs = Vec::new();
        for &load in &args.loads {
            let trace = Arc::new(background_seeded(
                FlowSizeDist::hadoop(),
                load,
                &net,
                args.duration,
                args.seed,
            ));
            for slot_ns in FIG12A_SLOTS_NS {
                let net = net.clone();
                let trace = Arc::clone(&trace);
                let duration = args.duration;
                let workers = args.workers;
                let meta = RunMeta::new(self.id(), specs.len(), "nego/parallel", args)
                    .load(load)
                    .param("slot_ns", slot_ns as f64);
                specs.push(RunSpec::new(meta, move || {
                    let mut cfg = NegotiatorConfig::paper_default(net.clone());
                    cfg.epoch.predefined_window = slot_ns - cfg.epoch.guardband;
                    let (mut rep, _) = run_negotiator(
                        cfg,
                        TopologyKind::Parallel,
                        SimOptions::default(),
                        &trace,
                        duration,
                        workers,
                    );
                    let cell = report::us(rep.mice.p99_ns());
                    RunMetrics::with_report(Rendered::Cells(vec![cell]), rep)
                }));
            }
        }
        specs
    }
    fn render(&self, results: &[RunResult]) -> String {
        let mut table = Table::new(
            "Figure 12(a) — 99p mice FCT (us) vs predefined timeslot duration, parallel",
            &["load", "20ns", "30ns", "60ns", "90ns", "120ns"],
        );
        for chunk in results.chunks(FIG12A_SLOTS_NS.len()) {
            let mut cells = vec![report::pct(chunk[0].load())];
            cells.extend(chunk.iter().map(|r| r.cells()[0].clone()));
            table.row(cells);
        }
        table.render()
    }
}

/// Figure 12(b): scheduled-phase length sweep, parallel network.
pub struct Fig12b;

const FIG12B_SLOTS: [usize; 5] = [10, 30, 50, 100, 500];

impl Experiment for Fig12b {
    fn id(&self) -> &'static str {
        "fig12b"
    }
    fn artifact(&self) -> &'static str {
        "Figure 12(b): scheduled-phase length sensitivity"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        let net = NetworkConfig::paper_default();
        let mut specs = Vec::new();
        for &load in &args.loads {
            let trace = Arc::new(background_seeded(
                FlowSizeDist::hadoop(),
                load,
                &net,
                args.duration,
                args.seed,
            ));
            for slots in FIG12B_SLOTS {
                let net = net.clone();
                let trace = Arc::clone(&trace);
                let duration = args.duration;
                let workers = args.workers;
                let meta = RunMeta::new(self.id(), specs.len(), "nego/parallel", args)
                    .load(load)
                    .param("scheduled_slots", slots as f64);
                specs.push(RunSpec::new(meta, move || {
                    let mut cfg = NegotiatorConfig::paper_default(net.clone());
                    cfg.epoch.scheduled_slots = slots;
                    let (mut rep, _) = run_negotiator(
                        cfg,
                        TopologyKind::Parallel,
                        SimOptions::default(),
                        &trace,
                        duration,
                        workers,
                    );
                    let cells = vec![
                        report::ms(rep.mice.p99_ns()),
                        format!("{:.3}", rep.goodput.normalized()),
                    ];
                    RunMetrics::with_report(Rendered::Cells(cells), rep)
                }));
            }
        }
        specs
    }
    fn render(&self, results: &[RunResult]) -> String {
        let mut fct = Table::new(
            "Figure 12(b) — 99p mice FCT (ms) vs scheduled-phase slots, parallel",
            &["load", "10", "30", "50", "100", "500"],
        );
        let mut gp = Table::new(
            "Figure 12(b) — normalized goodput vs scheduled-phase slots, parallel",
            &["load", "10", "30", "50", "100", "500"],
        );
        for chunk in results.chunks(FIG12B_SLOTS.len()) {
            let mut fct_cells = vec![report::pct(chunk[0].load())];
            let mut gp_cells = vec![report::pct(chunk[0].load())];
            for r in chunk {
                fct_cells.push(r.cells()[0].clone());
                gp_cells.push(r.cells()[1].clone());
            }
            fct.row(fct_cells);
            gp.row(gp_cells);
        }
        format!("{}\n{}", fct.render(), gp.render())
    }
}

/// Figure 13(a): Hadoop background randomly mixed with degree-20, 1 KB
/// incasts taking 2% of the downlink aggregate — one run per
/// (load, system), the mixed trace shared per load.
pub struct Fig13a;

/// The three systems of Figure 13(a)'s legend.
const FIG13A_SYSTEMS: &[&str] = &["nego/parallel", "nego/thin-clos", "oblivious/thin-clos"];

/// Mean incast finish: group tagged flows by (arrival, dst) and take the
/// latest completion per burst. Bursts arriving in the last stretch of
/// the run cannot finish before the horizon and are excluded; an
/// unfinished earlier burst counts as the full horizon.
fn incast_finish(
    trace: &FlowTrace,
    tags: &[bool],
    duration: u64,
    tracker: &metrics::FlowTracker,
) -> Option<f64> {
    let cutoff = duration.saturating_sub(duration / 5);
    let mut bursts: std::collections::HashMap<(u64, usize), u64> = Default::default();
    for (f, &tag) in trace.flows().iter().zip(tags) {
        if !tag || f.arrival >= cutoff {
            continue;
        }
        let finish = match tracker.completion(f.id) {
            Some(done) => done - f.arrival,
            None => duration - f.arrival, // unfinished: lower bound
        };
        let e = bursts.entry((f.arrival, f.dst)).or_insert(0);
        *e = (*e).max(finish);
    }
    if bursts.is_empty() {
        return None;
    }
    Some(bursts.values().sum::<u64>() as f64 / bursts.len() as f64)
}

impl Experiment for Fig13a {
    fn id(&self) -> &'static str {
        "fig13a"
    }
    fn artifact(&self) -> &'static str {
        "Figure 13(a): Hadoop mixed with incasts"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        let net = NetworkConfig::paper_default();
        let mut specs = Vec::new();
        for &load in &args.loads {
            let mixed = MixedWorkload {
                background: WorkloadSpec {
                    dist: FlowSizeDist::hadoop(),
                    load,
                    n_tors: net.n_tors,
                    host_bps: net.host_bandwidth.bps(),
                },
                incast_degree: 20,
                incast_flow_bytes: 1_000,
                incast_load: 0.02,
            };
            let (trace, tags) = mixed.generate(args.duration, SEED);
            let bg_tags: Vec<bool> = tags.iter().map(|&t| !t).collect();
            let shared = Arc::new((trace, tags, bg_tags));
            for (sys, &name) in FIG13A_SYSTEMS.iter().enumerate() {
                let net = net.clone();
                let shared = Arc::clone(&shared);
                let duration = args.duration;
                let workers = args.workers;
                let meta = RunMeta::new(self.id(), specs.len(), name, args)
                    .load(load)
                    .seed(SEED);
                specs.push(RunSpec::new(meta, move || {
                    let (trace, tags, bg_tags) = &*shared;
                    let (mut bg, overall, finish) = match sys {
                        0 | 1 => {
                            let kind = if sys == 0 {
                                TopologyKind::Parallel
                            } else {
                                TopologyKind::ThinClos
                            };
                            let cfg = NegotiatorConfig::paper_default(net.clone());
                            let opts = SimOptions {
                                workers,
                                ..SimOptions::default()
                            };
                            let mut sim = NegotiatorSim::with_options(cfg, kind, opts);
                            sim.run(trace, duration);
                            let bg = sim.report_subset(trace, bg_tags);
                            let overall = RunReport::build(
                                trace,
                                sim.tracker(),
                                duration,
                                net.n_tors,
                                net.host_bandwidth.bps(),
                                None,
                            );
                            let finish = incast_finish(trace, tags, duration, sim.tracker());
                            (bg, overall, finish)
                        }
                        _ => {
                            let mut sim = ObliviousSim::new(
                                ObliviousConfig::paper_default(net.clone()),
                                TopologyKind::ThinClos,
                            );
                            sim.set_workers(workers);
                            sim.run(trace, duration);
                            let bg = sim.report_subset(trace, bg_tags);
                            let overall = RunReport::build(
                                trace,
                                sim.tracker(),
                                duration,
                                net.n_tors,
                                net.host_bandwidth.bps(),
                                None,
                            );
                            let finish = incast_finish(trace, tags, duration, sim.tracker());
                            (bg, overall, finish)
                        }
                    };
                    let cell = format!(
                        "{}/{}/{:.3}",
                        report::ms(bg.mice.p99_ns()),
                        finish.map_or("DNF".into(), report::ms),
                        overall.goodput.normalized()
                    );
                    let mut metrics = RunMetrics::with_report(Rendered::Cells(vec![cell]), bg)
                        .push_extra("overall_goodput", overall.goodput.normalized());
                    if let Some(f) = finish {
                        metrics = metrics.push_extra("incast_finish_ns", f);
                    }
                    metrics
                }));
            }
        }
        specs
    }
    fn render(&self, results: &[RunResult]) -> String {
        let mut table = Table::new(
            "Figure 13(a) — Hadoop + incast mix: background 99p mice FCT (ms) / mean incast finish (ms) / goodput",
            &["load", "nego/parallel", "nego/thin-clos", "oblivious/thin-clos"],
        );
        for chunk in results.chunks(FIG13A_SYSTEMS.len()) {
            let mut cells = vec![report::pct(chunk[0].load())];
            cells.extend(chunk.iter().map(|r| r.cells()[0].clone()));
            table.row(cells);
        }
        table.render()
    }
}

/// Figure 13(b): the heavier web-search workload.
pub struct Fig13b;

impl Experiment for Fig13b {
    fn id(&self) -> &'static str {
        "fig13b"
    }
    fn artifact(&self) -> &'static str {
        "Figure 13(b): web-search workload"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        load_sweep_specs(
            self.id(),
            NetworkConfig::paper_default(),
            FlowSizeDist::web_search(),
            args,
        )
    }
    fn render(&self, results: &[RunResult]) -> String {
        load_sweep_render("Figure 13(b) (web search)", results)
    }
}

/// Figure 13(c): the lighter Google workload.
pub struct Fig13c;

impl Experiment for Fig13c {
    fn id(&self) -> &'static str {
        "fig13c"
    }
    fn artifact(&self) -> &'static str {
        "Figure 13(c): Google workload"
    }
    fn specs(&self, args: &Args) -> Vec<RunSpec> {
        load_sweep_specs(
            self.id(),
            NetworkConfig::paper_default(),
            FlowSizeDist::google(),
            args,
        )
    }
    fn render(&self, results: &[RunResult]) -> String {
        load_sweep_render("Figure 13(c) (Google)", results)
    }
}
