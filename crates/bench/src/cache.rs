//! The content-addressed scenario result cache.
//!
//! Results are keyed by [`CompiledScenario::content_hash`] — a stable
//! digest of everything that determines the output bytes (see
//! `scenario::hash`) — and stored one file per key as
//! `<dir>/<hash>.json`. The CLI (`paper scenario`) and the serving daemon
//! (`paper serve`) share the directory, so whichever computes a result
//! first saves the other the simulation.
//!
//! An entry carries the scenario's *deterministic result document* (the
//! timing-free `results/scenario-<name>.json` bytes) plus the rendered
//! text report, wrapped in a small JSON envelope. Writes go to a
//! temporary file in the same directory and land via `rename`, so a
//! crash, a full disk, or two writers racing on the same hash can never
//! leave a torn entry — a reader sees the old entry, the new entry, or
//! nothing.
//!
//! [`CompiledScenario::content_hash`]: scenario::CompiledScenario::content_hash

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use metrics::Json;

use crate::profile::{self, Stage};

/// Envelope version; bumped if the entry layout changes.
pub const CACHE_VERSION: u64 = 1;

/// One cached scenario result.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// Scenario name (diagnostics only; the hash is the identity).
    pub scenario: String,
    /// The rendered text report (what `paper scenario` prints).
    pub rendered: String,
    /// The deterministic result document — the exact bytes the daemon
    /// returns and `--json --no-timing` writes, trailing newline included.
    pub document: String,
}

/// Hit/miss totals shared by every clone of one [`ResultCache`] (the
/// daemon clones its cache across connection handlers; the counts must
/// aggregate, not fork).
#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A content-addressed store rooted at one directory.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
    counters: Arc<CacheCounters>,
}

impl ResultCache {
    /// Cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultCache {
            dir: dir.into(),
            counters: Arc::new(CacheCounters::default()),
        }
    }

    /// Lifetime `(hits, misses)` across this cache and all its clones.
    /// Corrupt entries count as misses — that is what the caller saw.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.counters.hits.load(Ordering::Relaxed),
            self.counters.misses.load(Ordering::Relaxed),
        )
    }

    /// The directory this cache lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry for `hash`.
    pub fn entry_path(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{}.json", scenario::hash::hex(hash)))
    }

    /// Look up `hash`. `None` on a miss; a present-but-corrupt entry also
    /// reads as a miss (and is reported) rather than poisoning the run —
    /// the simulation is always a safe fallback.
    pub fn lookup(&self, hash: u64) -> Option<CacheEntry> {
        let timer = profile::start(Stage::CacheLookup);
        let found = self.lookup_inner(hash);
        timer.stop();
        match found.is_some() {
            true => self.counters.hits.fetch_add(1, Ordering::Relaxed),
            false => self.counters.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn lookup_inner(&self, hash: u64) -> Option<CacheEntry> {
        let path = self.entry_path(hash);
        let text = std::fs::read_to_string(&path).ok()?;
        match parse_entry(&text) {
            Ok(entry) => Some(entry),
            Err(error) => {
                eprintln!(
                    "[cache: ignoring corrupt entry {}: {error}]",
                    path.display()
                );
                None
            }
        }
    }

    /// Store `entry` under `hash` atomically (write-to-temp + rename).
    /// Returns the entry's final path.
    pub fn store(&self, hash: u64, entry: &CacheEntry) -> std::io::Result<PathBuf> {
        let timer = profile::start(Stage::CacheStore);
        let result = self.store_inner(hash, entry);
        timer.stop();
        result
    }

    fn store_inner(&self, hash: u64, entry: &CacheEntry) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.entry_path(hash);
        // The temp name carries the pid so two processes storing the same
        // hash never clobber each other's in-flight temp file; both
        // renames land a complete entry with identical bytes.
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            scenario::hash::hex(hash),
            std::process::id()
        ));
        let mut envelope = Json::object();
        envelope
            .push("cache_version", CACHE_VERSION)
            .push("hash", scenario::hash::hex(hash))
            .push("scenario", entry.scenario.as_str())
            .push("rendered", entry.rendered.as_str())
            .push("document", entry.document.as_str());
        let mut text = envelope.render();
        text.push('\n');
        std::fs::write(&tmp, text)?;
        match std::fs::rename(&tmp, &path) {
            Ok(()) => Ok(path),
            Err(error) => {
                // Never leave the temp file behind on a failed landing.
                let _ = std::fs::remove_file(&tmp);
                Err(error)
            }
        }
    }
}

fn parse_entry(text: &str) -> Result<CacheEntry, String> {
    let doc = Json::parse(text)?;
    let version = doc
        .get("cache_version")
        .and_then(Json::as_u64)
        .ok_or("missing cache_version")?;
    if version != CACHE_VERSION {
        return Err(format!("cache_version {version} != {CACHE_VERSION}"));
    }
    let field = |key: &str| -> Result<String, String> {
        doc.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing '{key}'"))
    };
    Ok(CacheEntry {
        scenario: field("scenario")?,
        rendered: field("rendered")?,
        document: field("document")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nego-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn entry() -> CacheEntry {
        CacheEntry {
            scenario: "smoke".into(),
            rendered: "# Scenario 'smoke'\nline two\n".into(),
            document: "{\n  \"schema_version\": 1\n}\n".into(),
        }
    }

    #[test]
    fn store_then_lookup_round_trips_exact_bytes() {
        let cache = ResultCache::new(tmp_dir("roundtrip"));
        let hash = 0xDEAD_BEEF_u64;
        assert_eq!(cache.lookup(hash), None, "fresh dir misses");
        let path = cache.store(hash, &entry()).unwrap();
        assert_eq!(path, cache.entry_path(hash));
        assert!(path.ends_with("00000000deadbeef.json"), "{path:?}");
        let back = cache.lookup(hash).expect("hit");
        assert_eq!(back, entry());
        // Distinct hashes stay distinct.
        assert_eq!(cache.lookup(hash + 1), None);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entries_read_as_misses() {
        let cache = ResultCache::new(tmp_dir("corrupt"));
        let hash = 7u64;
        cache.store(hash, &entry()).unwrap();
        std::fs::write(cache.entry_path(hash), "{\"cache_version\": 1, trunc").unwrap();
        assert_eq!(cache.lookup(hash), None);
        // A wrong version is a miss too, not a crash.
        std::fs::write(cache.entry_path(hash), "{\"cache_version\": 99}").unwrap();
        assert_eq!(cache.lookup(hash), None);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stats_count_hits_and_misses_across_clones() {
        let cache = ResultCache::new(tmp_dir("stats"));
        assert_eq!(cache.stats(), (0, 0));
        cache.lookup(11); // miss
        cache.store(11, &entry()).unwrap();
        let clone = cache.clone();
        clone.lookup(11); // hit, seen by both
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(clone.stats(), (1, 1));
        // Corrupt entries count as misses.
        std::fs::write(cache.entry_path(11), "garbage").unwrap();
        assert_eq!(cache.lookup(11), None);
        assert_eq!(cache.stats(), (1, 2));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn no_temp_files_survive_a_store() {
        let cache = ResultCache::new(tmp_dir("tmpfiles"));
        cache.store(1, &entry()).unwrap();
        cache.store(2, &entry()).unwrap();
        let stray: Vec<_> = std::fs::read_dir(cache.dir())
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(stray.is_empty(), "{stray:?}");
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
