//! Command-line parsing for the `paper` binary, separated out so the
//! validation rules are unit-testable.

use std::path::PathBuf;

use crate::experiments::{find_experiment, Args, EXPERIMENTS};

/// Default daemon address for `paper serve` / `paper submit`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7470";

/// Smallest accepted `--trace-capacity`: below 1Ki events the ring drops
/// the convergence timeline on even trivial runs, which makes every
/// downstream forensics answer misleading.
pub const MIN_TRACE_CAPACITY: usize = 1024;

/// Default `--context` lines each side of a `paper trace diff` divergence.
pub const DEFAULT_DIFF_CONTEXT: usize = 3;

/// A parsed `paper trace` subcommand: summary, forensic query, or diff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceCmd {
    /// `paper trace <file>` — render the section summary.
    Summary(PathBuf),
    /// `paper trace query <file>` — filter and aggregate events.
    Query(PathBuf),
    /// `paper trace diff <a> <b>` — locate the first divergent event.
    Diff(PathBuf, PathBuf),
}

/// A parsed `paper` invocation.
#[derive(Debug, Clone)]
pub struct Cli {
    /// `paper list` — print the registry and exit (`--json` for the
    /// machine-readable form).
    pub list: bool,
    /// `paper lint` — run the determinism linter over the workspace
    /// (`--json` for the machine-readable findings document).
    pub lint: bool,
    /// `paper scenario <file.json>...` — run declarative scenario files
    /// (a batch dedupes identical runs before dispatch).
    pub scenario: Vec<PathBuf>,
    /// `paper serve` — run the scenario-serving daemon.
    pub serve: bool,
    /// `paper submit <file.json>` — submit a scenario to a daemon.
    pub submit: Option<PathBuf>,
    /// `paper trace …` — summarize, query or diff flight-recorder traces.
    pub trace_cmd: Option<TraceCmd>,
    /// Write flight-recorder NDJSON for scenario runs (`--trace PATH`; a
    /// multi-file batch writes one suffixed file per scenario).
    pub trace: Option<PathBuf>,
    /// Fail `paper trace <file>` when the recorder dropped events
    /// (`--strict`).
    pub trace_strict: bool,
    /// Event-kind filter for `paper trace query` (`--kind NAME`).
    pub trace_kind: Option<String>,
    /// ToR filter for `paper trace query` (`--tor N`; matches `tor`,
    /// `src` and `dst` fields).
    pub trace_tor: Option<u64>,
    /// Flow filter for `paper trace query` (`--flow N`; prints the
    /// flow's span timeline).
    pub trace_flow: Option<u64>,
    /// Inclusive epoch-range filter for `paper trace query`
    /// (`--epoch A..B`, or a single epoch `--epoch N`).
    pub trace_epochs: Option<(u64, u64)>,
    /// Report the slowest-N completed flows in `paper trace query`
    /// (`--top-fct N`).
    pub trace_top_fct: Option<usize>,
    /// Aligned-context lines each side of a `paper trace diff` divergence
    /// (`--context N`).
    pub trace_context: usize,
    /// Flight-recorder ring capacity per engine (`--trace-capacity N`,
    /// power of two ≥ 1Ki; `paper serve` and `--trace` runs only). Purely
    /// an observability knob: never enters results, hashes or cache keys.
    pub trace_capacity: Option<usize>,
    /// Daemon log verbosity for `paper serve`
    /// (`--log-level error|info|debug`, default `info`). Kept as the raw
    /// token here; the service layer owns the typed level.
    pub log_level: String,
    /// Daemon address for `serve`/`submit` (`--addr HOST:PORT`).
    pub addr: String,
    /// Job priority for `submit` (`--priority N`, higher runs earlier).
    pub priority: i64,
    /// Experiment ids to run, in request order (`all` expands here).
    pub ids: Vec<String>,
    /// Harness parameters (duration, loads; seed is taken from `seeds`).
    pub args: Args,
    /// Workload seeds — one full sweep per seed (`--seed N` or
    /// `--seeds A,B,C`).
    pub seeds: Vec<u64>,
    /// Worker threads for the sweep engine (`--jobs N`, default: available
    /// parallelism).
    pub jobs: usize,
    /// Intra-run shard workers per simulation (`--workers N`, default 1).
    /// Purely a wall-clock knob: output is byte-identical at any value.
    pub workers: usize,
    /// Write `results/<id>.json` files (`--json`).
    pub json: bool,
    /// Attach wall-clock metadata to written JSON (`--no-timing` clears
    /// it, yielding the fully deterministic document).
    pub timing: bool,
    /// Consult/populate the content-addressed result cache on scenario
    /// runs (`--no-cache` disables both directions).
    pub cache: bool,
    /// Output directory for `--json` (`--out DIR`, default `results`).
    pub out: PathBuf,
}

/// Parse and validate `argv` (without the program name).
pub fn parse(argv: Vec<String>) -> Result<Cli, String> {
    let mut cli = Cli {
        list: false,
        lint: false,
        scenario: Vec::new(),
        serve: false,
        submit: None,
        trace_cmd: None,
        trace: None,
        trace_strict: false,
        trace_kind: None,
        trace_tor: None,
        trace_flow: None,
        trace_epochs: None,
        trace_top_fct: None,
        trace_context: DEFAULT_DIFF_CONTEXT,
        trace_capacity: None,
        log_level: "info".to_string(),
        addr: DEFAULT_ADDR.to_string(),
        priority: 0,
        ids: Vec::new(),
        args: Args::default(),
        seeds: Vec::new(),
        jobs: sim::pool::default_jobs(),
        workers: 1,
        json: false,
        timing: true,
        cache: true,
        out: PathBuf::from("results"),
    };
    let mut addr_set = false;
    let mut priority_set = false;
    let mut log_level_set = false;
    // Flags a scenario file pins itself (scenarios carry their own seed,
    // loads and horizon, so accepting these would silently lie).
    let mut harness_flags: Vec<&'static str> = Vec::new();
    let mut context_set = false;
    let mut it = argv.into_iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--duration-ms" => {
                let v = value(&mut it, "--duration-ms")?;
                let ms: f64 = v
                    .parse()
                    .map_err(|_| format!("--duration-ms: '{v}' is not a number"))?;
                if !ms.is_finite() || ms <= 0.0 {
                    return Err(format!("--duration-ms: {ms} must be > 0"));
                }
                cli.args.duration = (ms * 1e6) as u64;
                harness_flags.push("--duration-ms");
            }
            "--seed" => {
                let v = value(&mut it, "--seed")?;
                cli.seeds = vec![v
                    .parse()
                    .map_err(|_| format!("--seed: '{v}' is not an integer"))?];
                harness_flags.push("--seed");
            }
            "--seeds" => {
                let v = value(&mut it, "--seeds")?;
                cli.seeds = v
                    .split(',')
                    .map(|s| {
                        s.parse()
                            .map_err(|_| format!("--seeds: '{s}' is not an integer"))
                    })
                    .collect::<Result<_, _>>()?;
                if cli.seeds.is_empty() {
                    return Err("--seeds: need at least one seed".into());
                }
                harness_flags.push("--seeds");
            }
            "--loads" => {
                let v = value(&mut it, "--loads")?;
                cli.args.loads = v.split(',').map(parse_load).collect::<Result<_, _>>()?;
                harness_flags.push("--loads");
            }
            "scenario" => {
                let v = value(&mut it, "scenario")?;
                cli.scenario.push(PathBuf::from(v));
            }
            "serve" => cli.serve = true,
            "trace" => {
                if cli.trace_cmd.is_some() {
                    return Err("trace: one trace file per invocation".into());
                }
                cli.trace_cmd = Some(match it.peek().map(String::as_str) {
                    Some("query") => {
                        it.next();
                        TraceCmd::Query(PathBuf::from(value(&mut it, "trace query")?))
                    }
                    Some("diff") => {
                        it.next();
                        let a = PathBuf::from(value(&mut it, "trace diff")?);
                        let b = PathBuf::from(value(&mut it, "trace diff")?);
                        TraceCmd::Diff(a, b)
                    }
                    _ => TraceCmd::Summary(PathBuf::from(value(&mut it, "trace")?)),
                });
            }
            "submit" => {
                let v = value(&mut it, "submit")?;
                if cli.submit.is_some() {
                    return Err("submit: one scenario file per submission".into());
                }
                cli.submit = Some(PathBuf::from(v));
            }
            "--addr" => {
                cli.addr = value(&mut it, "--addr")?;
                if !cli.addr.contains(':') {
                    return Err(format!("--addr: '{}' is not HOST:PORT", cli.addr));
                }
                addr_set = true;
            }
            "--priority" => {
                let v = value(&mut it, "--priority")?;
                cli.priority = v
                    .parse()
                    .map_err(|_| format!("--priority: '{v}' is not an integer"))?;
                priority_set = true;
            }
            "--no-timing" => cli.timing = false,
            "--no-cache" => cli.cache = false,
            "--trace" => cli.trace = Some(PathBuf::from(value(&mut it, "--trace")?)),
            "--strict" => cli.trace_strict = true,
            "--kind" => cli.trace_kind = Some(value(&mut it, "--kind")?),
            "--tor" => {
                let v = value(&mut it, "--tor")?;
                cli.trace_tor = Some(
                    v.parse()
                        .map_err(|_| format!("--tor: '{v}' is not a ToR index"))?,
                );
            }
            "--flow" => {
                let v = value(&mut it, "--flow")?;
                cli.trace_flow = Some(
                    v.parse()
                        .map_err(|_| format!("--flow: '{v}' is not a flow id"))?,
                );
            }
            "--epoch" => {
                let v = value(&mut it, "--epoch")?;
                cli.trace_epochs = Some(parse_epoch_range(&v)?);
            }
            "--top-fct" => {
                let v = value(&mut it, "--top-fct")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--top-fct: '{v}' is not an integer"))?;
                if n == 0 {
                    return Err("--top-fct: need at least 1 flow".into());
                }
                cli.trace_top_fct = Some(n);
            }
            "--context" => {
                let v = value(&mut it, "--context")?;
                cli.trace_context = v
                    .parse()
                    .map_err(|_| format!("--context: '{v}' is not an integer"))?;
                context_set = true;
            }
            "--trace-capacity" => {
                let v = value(&mut it, "--trace-capacity")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--trace-capacity: '{v}' is not an integer"))?;
                if n < MIN_TRACE_CAPACITY || !n.is_power_of_two() {
                    return Err(format!(
                        "--trace-capacity: {n} must be a power of two ≥ {MIN_TRACE_CAPACITY}"
                    ));
                }
                cli.trace_capacity = Some(n);
            }
            "--log-level" => {
                let v = value(&mut it, "--log-level")?;
                if !matches!(v.as_str(), "error" | "info" | "debug") {
                    return Err(format!(
                        "--log-level: unknown level '{v}' (expected error, info or debug)"
                    ));
                }
                cli.log_level = v;
                log_level_set = true;
            }
            "--jobs" => {
                let v = value(&mut it, "--jobs")?;
                let jobs: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs: '{v}' is not an integer"))?;
                if jobs == 0 {
                    return Err("--jobs: need at least 1 worker".into());
                }
                cli.jobs = jobs;
            }
            "--workers" => {
                let v = value(&mut it, "--workers")?;
                let workers: usize = v
                    .parse()
                    .map_err(|_| format!("--workers: '{v}' is not an integer"))?;
                if workers == 0 {
                    return Err("--workers: need at least 1 shard worker".into());
                }
                cli.workers = workers;
                cli.args.workers = workers;
            }
            "--json" => cli.json = true,
            "--out" => cli.out = PathBuf::from(value(&mut it, "--out")?),
            "list" => cli.list = true,
            "lint" => cli.lint = true,
            "all" => cli
                .ids
                .extend(EXPERIMENTS.iter().map(|e| e.id().to_string())),
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag '{flag}'"));
            }
            id => {
                // Once `scenario` has been seen, further positionals are
                // scenario files (`paper scenario a.json b.json`).
                if !cli.scenario.is_empty() {
                    cli.scenario.push(PathBuf::from(id));
                } else if find_experiment(id).is_none() {
                    return Err(format!("unknown experiment '{id}' — try `paper list`"));
                } else {
                    cli.ids.push(id.to_string());
                }
            }
        }
    }
    if !cli.scenario.is_empty() {
        if !cli.ids.is_empty() {
            return Err("scenario runs cannot be mixed with experiment ids".into());
        }
        if let Some(flag) = harness_flags.first() {
            return Err(format!(
                "{flag}: a scenario file pins its own seed, loads and duration — edit the file instead"
            ));
        }
    }
    // The serving pair and the linter are their own modes: no experiment
    // ids, no local scenario runs alongside.
    let modes = [
        cli.serve,
        cli.submit.is_some(),
        cli.lint,
        cli.trace_cmd.is_some(),
        !cli.scenario.is_empty() || !cli.ids.is_empty() || cli.list,
    ];
    if modes.iter().filter(|&&m| m).count() > 1 {
        return Err(
            "serve/submit/lint/trace cannot be mixed with experiment, scenario or list invocations"
                .into(),
        );
    }
    if addr_set && !cli.serve && cli.submit.is_none() {
        return Err("--addr only applies to `paper serve` / `paper submit`".into());
    }
    if priority_set && cli.submit.is_none() {
        return Err("--priority only applies to `paper submit`".into());
    }
    if log_level_set && !cli.serve {
        return Err("--log-level only applies to `paper serve`".into());
    }
    if cli.trace.is_some() && cli.scenario.is_empty() {
        return Err("--trace records flight-recorder output for `paper scenario` runs only".into());
    }
    if cli.trace_capacity.is_some() && !cli.serve && cli.trace.is_none() {
        return Err(
            "--trace-capacity only applies to `paper serve` and `--trace` scenario runs".into(),
        );
    }
    if cli.trace_strict && !matches!(cli.trace_cmd, Some(TraceCmd::Summary(_))) {
        return Err("--strict only applies to `paper trace <file>` summaries".into());
    }
    let query_filters = [
        ("--kind", cli.trace_kind.is_some()),
        ("--tor", cli.trace_tor.is_some()),
        ("--flow", cli.trace_flow.is_some()),
        ("--epoch", cli.trace_epochs.is_some()),
        ("--top-fct", cli.trace_top_fct.is_some()),
    ];
    if !matches!(cli.trace_cmd, Some(TraceCmd::Query(_))) {
        if let Some((flag, _)) = query_filters.iter().find(|(_, set)| *set) {
            return Err(format!("{flag} only applies to `paper trace query`"));
        }
    }
    if context_set && !matches!(cli.trace_cmd, Some(TraceCmd::Diff(_, _))) {
        return Err("--context only applies to `paper trace diff`".into());
    }
    if cli.workers != 1 && (cli.submit.is_some() || cli.lint || cli.list) {
        return Err("--workers only applies to local runs and `paper serve`".into());
    }
    if cli.seeds.is_empty() {
        cli.seeds = vec![cli.args.seed];
    }
    Ok(cli)
}

/// Parse one `--loads` entry: a percentage in (0, 100], returned as a
/// fraction. Loads outside that range used to be silently accepted and
/// produced meaningless sweeps; now they error out.
fn parse_load(s: &str) -> Result<f64, String> {
    let pct: f64 = s
        .trim()
        .parse()
        .map_err(|_| format!("--loads: '{s}' is not a number"))?;
    if !pct.is_finite() || pct <= 0.0 || pct > 100.0 {
        return Err(format!(
            "--loads: {pct}% is out of range — loads are percentages in (0, 100]"
        ));
    }
    Ok(pct / 100.0)
}

/// Parse an `--epoch` filter: inclusive `A..B`, or a single epoch `N`.
fn parse_epoch_range(s: &str) -> Result<(u64, u64), String> {
    let (lo, hi) = s.split_once("..").unwrap_or((s, s));
    let parse = |part: &str| {
        part.parse::<u64>()
            .map_err(|_| format!("--epoch: '{s}' is not an epoch N or a range A..B"))
    };
    let (lo, hi) = (parse(lo)?, parse(hi)?);
    if lo > hi {
        return Err(format!("--epoch: {lo}..{hi} is an empty range"));
    }
    Ok((lo, hi))
}

fn value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_strs(args: &[&str]) -> Result<Cli, String> {
        parse(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn parses_a_full_invocation() {
        let cli = parse_strs(&[
            "fig9",
            "table2",
            "--duration-ms",
            "0.5",
            "--loads",
            "10,50,100",
            "--jobs",
            "2",
            "--json",
            "--out",
            "results/current",
            "--seed",
            "7",
        ])
        .unwrap();
        assert_eq!(cli.ids, vec!["fig9", "table2"]);
        assert_eq!(cli.args.duration, 500_000);
        assert_eq!(cli.args.loads, vec![0.10, 0.50, 1.00]);
        assert_eq!(cli.jobs, 2);
        assert!(cli.json);
        assert_eq!(cli.out, PathBuf::from("results/current"));
        assert_eq!(cli.seeds, vec![7]);
    }

    #[test]
    fn all_expands_to_the_registry() {
        let cli = parse_strs(&["all"]).unwrap();
        assert_eq!(cli.ids.len(), EXPERIMENTS.len());
        assert_eq!(cli.seeds, vec![crate::runs::SEED]);
    }

    #[test]
    fn loads_must_be_percentages_in_range() {
        // The old parser accepted these silently; they must error now.
        let err = parse_strs(&["fig9", "--loads", "0"]).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let err = parse_strs(&["fig9", "--loads", "150"]).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let err = parse_strs(&["fig9", "--loads", "50,-10"]).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let err = parse_strs(&["fig9", "--loads", "abc"]).unwrap_err();
        assert!(err.contains("not a number"), "{err}");
        // 100% inclusive, tiny loads fine.
        let cli = parse_strs(&["fig9", "--loads", "0.1,100"]).unwrap();
        assert_eq!(cli.args.loads, vec![0.001, 1.0]);
    }

    #[test]
    fn rejects_bad_flags_ids_and_values() {
        assert!(parse_strs(&["--nope"])
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse_strs(&["fig99"])
            .unwrap_err()
            .contains("unknown experiment"));
        assert!(parse_strs(&["--jobs", "0"])
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_strs(&["--jobs"])
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse_strs(&["--duration-ms", "-1"])
            .unwrap_err()
            .contains("> 0"));
        // 0 would yield an empty trace and NaN ratio cells; reject it too.
        assert!(parse_strs(&["--duration-ms", "0"])
            .unwrap_err()
            .contains("> 0"));
        assert!(parse_strs(&["--seeds", "1,x"])
            .unwrap_err()
            .contains("not an integer"));
    }

    #[test]
    fn workers_flag_parses_and_validates() {
        let cli = parse_strs(&["fig9", "--workers", "4"]).unwrap();
        assert_eq!(cli.workers, 4);
        assert_eq!(cli.args.workers, 4);
        let cli = parse_strs(&["fig9"]).unwrap();
        assert_eq!(cli.workers, 1, "defaults to sequential");
        let cli = parse_strs(&["scenario", "x.json", "--workers", "8"]).unwrap();
        assert_eq!(cli.workers, 8);
        let cli = parse_strs(&["serve", "--workers", "2"]).unwrap();
        assert_eq!(cli.workers, 2);
        assert!(parse_strs(&["fig9", "--workers", "0"])
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_strs(&["fig9", "--workers", "x"])
            .unwrap_err()
            .contains("not an integer"));
        let err = parse_strs(&["submit", "a.json", "--workers", "2"]).unwrap_err();
        assert!(err.contains("--workers only applies"), "{err}");
    }

    #[test]
    fn seeds_sweep() {
        let cli = parse_strs(&["fig9", "--seeds", "1,2,3"]).unwrap();
        assert_eq!(cli.seeds, vec![1, 2, 3]);
    }

    #[test]
    fn scenario_subcommand_parses_with_harness_flags() {
        let cli = parse_strs(&[
            "scenario",
            "scenarios/rolling_failures.json",
            "--jobs",
            "4",
            "--json",
            "--out",
            "results/current",
        ])
        .unwrap();
        assert_eq!(
            cli.scenario,
            vec![PathBuf::from("scenarios/rolling_failures.json")]
        );
        assert_eq!(cli.jobs, 4);
        assert!(cli.json);
        assert!(cli.timing && cli.cache, "timing and cache default on");
        assert!(cli.ids.is_empty());
    }

    #[test]
    fn scenario_accepts_a_batch_of_files() {
        // Both spellings: repeated keyword and bare positionals after the
        // first `scenario`.
        for argv in [
            &[
                "scenario",
                "a.json",
                "scenario",
                "b.json",
                "--no-timing",
                "--no-cache",
            ][..],
            &["scenario", "a.json", "b.json", "--no-timing", "--no-cache"],
        ] {
            let cli = parse_strs(argv).unwrap();
            assert_eq!(
                cli.scenario,
                vec![PathBuf::from("a.json"), PathBuf::from("b.json")],
                "{argv:?}"
            );
            assert!(!cli.timing);
            assert!(!cli.cache);
        }
    }

    #[test]
    fn serve_and_submit_parse_with_their_flags() {
        let cli = parse_strs(&["serve", "--addr", "0.0.0.0:9000", "--jobs", "3"]).unwrap();
        assert!(cli.serve);
        assert_eq!(cli.addr, "0.0.0.0:9000");
        assert_eq!(cli.jobs, 3);
        let cli = parse_strs(&["submit", "scenarios/ci_smoke.json", "--priority", "-2"]).unwrap();
        assert_eq!(cli.submit, Some(PathBuf::from("scenarios/ci_smoke.json")));
        assert_eq!(cli.priority, -2);
        assert_eq!(cli.addr, DEFAULT_ADDR);
    }

    #[test]
    fn lint_is_its_own_mode() {
        let cli = parse_strs(&["lint"]).unwrap();
        assert!(cli.lint && !cli.json);
        let cli = parse_strs(&["lint", "--json"]).unwrap();
        assert!(cli.lint && cli.json);
        let err = parse_strs(&["lint", "fig9"]).unwrap_err();
        assert!(err.contains("cannot be mixed"), "{err}");
        let err = parse_strs(&["lint", "serve"]).unwrap_err();
        assert!(err.contains("cannot be mixed"), "{err}");
        let err = parse_strs(&["lint", "list"]).unwrap_err();
        assert!(err.contains("cannot be mixed"), "{err}");
    }

    #[test]
    fn serve_submit_validation() {
        let err = parse_strs(&["serve", "fig9"]).unwrap_err();
        assert!(err.contains("cannot be mixed"), "{err}");
        let err = parse_strs(&["submit", "a.json", "scenario", "b.json"]).unwrap_err();
        assert!(err.contains("cannot be mixed"), "{err}");
        let err = parse_strs(&["serve", "list"]).unwrap_err();
        assert!(err.contains("cannot be mixed"), "{err}");
        let err = parse_strs(&["fig9", "--addr", "1.2.3.4:5"]).unwrap_err();
        assert!(err.contains("--addr only applies"), "{err}");
        let err = parse_strs(&["serve", "--priority", "1"]).unwrap_err();
        assert!(err.contains("--priority only applies"), "{err}");
        let err = parse_strs(&["serve", "--addr", "noport"]).unwrap_err();
        assert!(err.contains("not HOST:PORT"), "{err}");
        let err = parse_strs(&["submit", "a.json", "submit", "b.json"]).unwrap_err();
        assert!(err.contains("one scenario file per submission"), "{err}");
    }

    #[test]
    fn trace_flag_applies_to_scenario_runs_only() {
        let cli = parse_strs(&["scenario", "a.json", "--trace", "out.ndjson"]).unwrap();
        assert_eq!(cli.trace, Some(PathBuf::from("out.ndjson")));
        // A batch records one suffixed file per scenario.
        let cli = parse_strs(&["scenario", "a.json", "b.json", "--trace", "t.ndjson"]).unwrap();
        assert_eq!(cli.trace, Some(PathBuf::from("t.ndjson")));
        assert_eq!(cli.scenario.len(), 2);
        let err = parse_strs(&["fig9", "--trace", "t"]).unwrap_err();
        assert!(err.contains("scenario"), "{err}");
        let err = parse_strs(&["--trace"]).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
    }

    #[test]
    fn trace_subcommand_is_its_own_mode() {
        let cli = parse_strs(&["trace", "results/run.ndjson"]).unwrap();
        assert_eq!(
            cli.trace_cmd,
            Some(TraceCmd::Summary(PathBuf::from("results/run.ndjson")))
        );
        let err = parse_strs(&["trace", "a.ndjson", "trace", "b.ndjson"]).unwrap_err();
        assert!(err.contains("one trace file"), "{err}");
        let err = parse_strs(&["trace", "a.ndjson", "fig9"]).unwrap_err();
        assert!(err.contains("cannot be mixed"), "{err}");
        assert!(parse_strs(&["trace"])
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn trace_query_parses_its_filters() {
        let cli = parse_strs(&[
            "trace",
            "query",
            "t.ndjson",
            "--kind",
            "flow_grant",
            "--tor",
            "3",
            "--flow",
            "17",
            "--epoch",
            "10..20",
            "--top-fct",
            "5",
            "--json",
        ])
        .unwrap();
        assert_eq!(
            cli.trace_cmd,
            Some(TraceCmd::Query(PathBuf::from("t.ndjson")))
        );
        assert_eq!(cli.trace_kind.as_deref(), Some("flow_grant"));
        assert_eq!(cli.trace_tor, Some(3));
        assert_eq!(cli.trace_flow, Some(17));
        assert_eq!(cli.trace_epochs, Some((10, 20)));
        assert_eq!(cli.trace_top_fct, Some(5));
        assert!(cli.json);
        // A bare epoch is the single-epoch range.
        let cli = parse_strs(&["trace", "query", "t.ndjson", "--epoch", "7"]).unwrap();
        assert_eq!(cli.trace_epochs, Some((7, 7)));
        let err = parse_strs(&["trace", "query", "t.ndjson", "--epoch", "9..2"]).unwrap_err();
        assert!(err.contains("empty range"), "{err}");
        let err = parse_strs(&["trace", "query", "t.ndjson", "--epoch", "x"]).unwrap_err();
        assert!(err.contains("not an epoch"), "{err}");
        let err = parse_strs(&["trace", "query", "t.ndjson", "--top-fct", "0"]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        // Filters are query-only.
        let err = parse_strs(&["trace", "t.ndjson", "--kind", "sched"]).unwrap_err();
        assert!(err.contains("--kind only applies"), "{err}");
        let err = parse_strs(&["fig9", "--top-fct", "3"]).unwrap_err();
        assert!(err.contains("--top-fct only applies"), "{err}");
    }

    #[test]
    fn trace_diff_parses_two_files_and_context() {
        let cli = parse_strs(&["trace", "diff", "a.ndjson", "b.ndjson"]).unwrap();
        assert_eq!(
            cli.trace_cmd,
            Some(TraceCmd::Diff(
                PathBuf::from("a.ndjson"),
                PathBuf::from("b.ndjson")
            ))
        );
        assert_eq!(cli.trace_context, DEFAULT_DIFF_CONTEXT);
        let cli = parse_strs(&["trace", "diff", "a", "b", "--context", "7"]).unwrap();
        assert_eq!(cli.trace_context, 7);
        assert!(parse_strs(&["trace", "diff", "a.ndjson"])
            .unwrap_err()
            .contains("needs a value"));
        let err = parse_strs(&["trace", "a.ndjson", "--context", "2"]).unwrap_err();
        assert!(err.contains("--context only applies"), "{err}");
    }

    #[test]
    fn trace_strict_is_summary_only() {
        let cli = parse_strs(&["trace", "t.ndjson", "--strict"]).unwrap();
        assert!(cli.trace_strict);
        let err = parse_strs(&["trace", "diff", "a", "b", "--strict"]).unwrap_err();
        assert!(err.contains("--strict only applies"), "{err}");
        let err = parse_strs(&["fig9", "--strict"]).unwrap_err();
        assert!(err.contains("--strict only applies"), "{err}");
    }

    #[test]
    fn trace_capacity_validates_and_is_gated() {
        let cli = parse_strs(&[
            "scenario",
            "a.json",
            "--trace",
            "t",
            "--trace-capacity",
            "4096",
        ])
        .unwrap();
        assert_eq!(cli.trace_capacity, Some(4096));
        let cli = parse_strs(&["serve", "--trace-capacity", "1024"]).unwrap();
        assert_eq!(cli.trace_capacity, Some(1024));
        for bad in ["0", "100", "512", "3000"] {
            let err = parse_strs(&[
                "scenario",
                "a.json",
                "--trace",
                "t",
                "--trace-capacity",
                bad,
            ])
            .unwrap_err();
            assert!(err.contains("power of two"), "{bad}: {err}");
        }
        let err = parse_strs(&["fig9", "--trace-capacity", "4096"]).unwrap_err();
        assert!(err.contains("--trace-capacity only applies"), "{err}");
        let err = parse_strs(&["scenario", "a.json", "--trace-capacity", "4096"]).unwrap_err();
        assert!(err.contains("--trace-capacity only applies"), "{err}");
    }

    #[test]
    fn log_level_parses_and_is_serve_only() {
        let cli = parse_strs(&["serve", "--log-level", "debug"]).unwrap();
        assert_eq!(cli.log_level, "debug");
        let cli = parse_strs(&["serve"]).unwrap();
        assert_eq!(cli.log_level, "info", "defaults to info");
        let err = parse_strs(&["serve", "--log-level", "loud"]).unwrap_err();
        assert!(err.contains("unknown level"), "{err}");
        let err = parse_strs(&["fig9", "--log-level", "debug"]).unwrap_err();
        assert!(err.contains("--log-level only applies"), "{err}");
    }

    #[test]
    fn scenario_rejects_experiment_mixes_and_pinned_flags() {
        let err = parse_strs(&["fig9", "scenario", "x.json"]).unwrap_err();
        assert!(err.contains("cannot be mixed"), "{err}");
        for flag in [
            &["scenario", "x.json", "--seed", "3"][..],
            &["scenario", "x.json", "--seeds", "1,2"],
            &["scenario", "x.json", "--loads", "50"],
            &["scenario", "x.json", "--duration-ms", "1"],
        ] {
            let err = parse_strs(flag).unwrap_err();
            assert!(err.contains("pins its own"), "{flag:?}: {err}");
        }
        assert!(parse_strs(&["scenario"])
            .unwrap_err()
            .contains("needs a value"));
    }
}
