//! Harness side of the scenario engine: load a scenario file, compile it
//! (`scenario::compile`), wrap its engine runs into sweep [`RunSpec`]-shaped
//! work, and execute them on the shared `--jobs` pool — the same machinery
//! (and therefore the same byte-identical-at-any-jobs guarantee) every
//! hard-coded experiment uses. The resulting [`SweepReport`] flows through
//! `results::write_reports` unchanged, so a scenario's JSON lands as
//! `results/scenario-<name>.json` with the per-phase time series under
//! each run's `metrics.series`.
//!
//! Batches dedupe before dispatch: every engine run carries a stable
//! content hash ([`CompiledScenario::run_hash`]), and [`run_batch`]
//! simulates each distinct hash once, fanning the result out to every
//! position that asked for it. The coalesced count is reported, never
//! silently swallowed. The serving daemon executes the exact same
//! assembly path ([`execute_with_progress`]), which is what makes a
//! served result byte-identical to an offline run.

use std::collections::HashMap;
use std::path::Path;

use crate::experiments::Args;
use crate::sweep::{Rendered, RunMeta, RunMetrics, RunResult, SweepReport};
use scenario::series::stats_to_json;
use sim::pool;
// Re-exported so the `paper` binary reaches the scenario crate's API
// through this module.
pub use scenario::{
    build_runs, build_runs_traced, build_runs_with_progress, compile, parse_scenario,
    CompiledScenario, PhaseProgress, ProgressSink, ScenarioRunOutput, WorkloadPhase,
};

/// Load, parse and validate a scenario file, compiling it to run inputs.
/// Every error is prefixed with the file path; validation errors point at
/// `line:column` inside it.
pub fn load(path: &Path) -> Result<CompiledScenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    load_str(&text, path)
}

/// [`load`] for scenario text that is already in memory (a daemon
/// submission body). `origin` names the source in errors; its parent
/// directory anchors relative trace paths.
pub fn load_str(text: &str, origin: &Path) -> Result<CompiledScenario, String> {
    let spec = parse_scenario(text).map_err(|e| format!("{}:{e}", origin.display()))?;
    let base_dir = origin.parent().unwrap_or_else(|| Path::new("."));
    compile(spec, base_dir).map_err(|e| format!("{}: {e}", origin.display()))
}

/// One completed scenario batch: the per-scenario reports (input order)
/// and how many engine runs were coalesced away by content-hash dedup.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One report per input scenario, in input order.
    pub reports: Vec<SweepReport>,
    /// Engine runs that were *not* simulated because an identical run
    /// (same content hash) already was. 0 when every run was distinct.
    pub coalesced: usize,
}

/// Execute a compiled scenario across `jobs` pool workers with `workers`
/// intra-run shard workers per simulation, and assemble the sweep report
/// (rendered text + per-run metrics with series).
pub fn run(compiled: &CompiledScenario, jobs: usize, workers: usize) -> SweepReport {
    run_batch(std::slice::from_ref(compiled), jobs, workers)
        .reports
        .pop()
        .expect("one scenario in, one report out")
}

/// Execute a batch of compiled scenarios on one shared `jobs`-wide pool,
/// deduping identical engine runs (same [`CompiledScenario::run_hash`])
/// before dispatch: each distinct run simulates once and its output fans
/// out to every scenario/position that requested it. Reports come back in
/// input order and are byte-identical at any `jobs`.
pub fn run_batch(compiled: &[CompiledScenario], jobs: usize, workers: usize) -> BatchOutcome {
    // Map every (scenario, run) slot onto a deduped task list.
    let mut task_of_hash: HashMap<u64, usize> = HashMap::new();
    let mut tasks: Vec<pool::Task<(ScenarioRunOutput, f64)>> = Vec::new();
    // Per scenario: the (task index, system label, first occurrence) of
    // each of its runs, in engine order.
    let mut slots: Vec<Vec<(usize, String, bool)>> = Vec::new();
    let mut coalesced = 0usize;
    for c in compiled {
        let runs = build_runs(c, workers);
        let mut scenario_slots = Vec::with_capacity(runs.len());
        for (engine, run) in c.spec.engines.iter().zip(runs) {
            let hash = c.run_hash(*engine);
            let (task, first) = match task_of_hash.get(&hash) {
                Some(&task) => {
                    coalesced += 1;
                    (task, false)
                }
                None => {
                    let task = tasks.len();
                    task_of_hash.insert(hash, task);
                    let body = run.run;
                    tasks.push(Box::new(move || {
                        let timer = crate::profile::start(crate::profile::Stage::Execute);
                        let out = body();
                        (out, timer.stop())
                    }));
                    (task, true)
                }
            };
            scenario_slots.push((task, run.system, first));
        }
        slots.push(scenario_slots);
    }
    let outputs = pool::run_ordered(jobs, tasks);
    let reports = compiled
        .iter()
        .zip(slots)
        .map(|(c, scenario_slots)| {
            let results = scenario_slots
                .into_iter()
                .enumerate()
                .map(|(index, (task, system, first))| {
                    let (out, wall_secs) = &outputs[task];
                    // Duplicates cost nothing on the wall; only the run
                    // that actually simulated carries its cost.
                    make_result(
                        c,
                        index,
                        system,
                        out.clone(),
                        if first { *wall_secs } else { 0.0 },
                    )
                })
                .collect();
            assemble(c, results)
        })
        .collect();
    BatchOutcome { reports, coalesced }
}

/// Execute one compiled scenario **serially on the calling thread**,
/// streaming per-phase progress to `progress` as each engine crosses each
/// boundary. This is the daemon's job executor: one pool worker owns the
/// whole scenario; intra-scenario parallelism would fight the pool's own.
/// Output is byte-identical to [`run`] at any `jobs` — both go through
/// the same run closures and [`assemble`].
pub fn execute_with_progress(
    compiled: &CompiledScenario,
    progress: Option<ProgressSink>,
    workers: usize,
) -> SweepReport {
    execute_inner(compiled, progress, workers, None).0
}

/// [`execute_with_progress`] with the flight recorder attached: also
/// returns the scenario's trace — each engine's NDJSON concatenated in
/// spec order. `capacity` overrides the per-engine ring size
/// (`--trace-capacity`; `None` = [`metrics::DEFAULT_TRACE_CAPACITY`]) and
/// shapes only the trace bytes — never the report, hashes or cache keys.
/// Both the CLI's `--trace` flag and the daemon's job executor call this,
/// so an offline trace file and a served `GET /jobs/{id}/trace` body are
/// byte-identical by construction. The report itself is byte-identical to
/// an untraced run.
pub fn execute_traced(
    compiled: &CompiledScenario,
    progress: Option<ProgressSink>,
    workers: usize,
    capacity: Option<usize>,
) -> (SweepReport, String) {
    let ring = capacity.unwrap_or(metrics::DEFAULT_TRACE_CAPACITY);
    let (report, trace) = execute_inner(compiled, progress, workers, Some(ring));
    (report, trace.expect("traced run produces a trace"))
}

fn execute_inner(
    compiled: &CompiledScenario,
    progress: Option<ProgressSink>,
    workers: usize,
    trace: Option<usize>,
) -> (SweepReport, Option<String>) {
    let mut traces = trace.map(|_| String::new());
    let results = build_runs_traced(compiled, progress, workers, trace)
        .into_iter()
        .enumerate()
        .map(|(index, run)| {
            let timer = crate::profile::start(crate::profile::Stage::Execute);
            let mut out = (run.run)();
            let wall_secs = timer.stop();
            if let (Some(all), Some(one)) = (traces.as_mut(), out.trace.take()) {
                all.push_str(&one);
            }
            make_result(compiled, index, run.system, out, wall_secs)
        })
        .collect();
    (assemble(compiled, results), traces)
}

/// The deterministic result document for a scenario report: the
/// timing-free JSON rendering plus a trailing newline — exactly the bytes
/// `paper scenario --json --no-timing` writes, the daemon serves, and the
/// cache stores.
pub fn deterministic_document(report: &SweepReport) -> String {
    let mut text = crate::results::experiment_json(report, None).render();
    text.push('\n');
    text
}

/// Wrap one engine's output into a sweep [`RunResult`] at `index`.
fn make_result(
    compiled: &CompiledScenario,
    index: usize,
    system: String,
    out: ScenarioRunOutput,
    wall_secs: f64,
) -> RunResult {
    let args = scenario_args(compiled);
    let meta = RunMeta::new(leaked_id(compiled), index, system, &args).duration(compiled.duration);
    let mut metrics = RunMetrics::new(Rendered::Block(out.rendered))
        .with_series(stats_to_json(&out.series))
        .with_match_ratio(out.match_ratio);
    metrics.report = Some(out.summary);
    RunResult {
        meta,
        metrics,
        wall_secs,
    }
}

/// Assemble the scenario's [`SweepReport`] from its ordered run results.
fn assemble(compiled: &CompiledScenario, results: Vec<RunResult>) -> SweepReport {
    let spec = &compiled.spec;
    let artifact: &'static str = intern(format!(
        "Scenario '{}'{}{}",
        spec.name,
        if spec.description.is_empty() {
            ""
        } else {
            ": "
        },
        spec.description
    ));
    let mut rendered = format!(
        "# Scenario '{}' — {} phases, {} events, {} flows over {} epochs ({:.3} ms)\n",
        spec.name,
        spec.phases.len(),
        spec.events.len(),
        compiled.trace.len(),
        spec.total_epochs(),
        compiled.duration as f64 / 1e6,
    );
    for result in &results {
        rendered.push('\n');
        rendered.push_str(result.block());
    }
    SweepReport {
        id: leaked_id(compiled),
        artifact,
        args: scenario_args(compiled),
        results,
        rendered,
    }
}

fn scenario_args(compiled: &CompiledScenario) -> Args {
    Args {
        duration: compiled.duration,
        loads: Vec::new(),
        seed: compiled.spec.seed,
        // Metadata only ever surfaces seed and duration; the shard worker
        // count must never reach the output bytes.
        workers: 1,
    }
}

/// Sweep metadata wants 'static strs; scenario names are made so by
/// interning.
fn leaked_id(compiled: &CompiledScenario) -> &'static str {
    intern(format!("scenario-{}", compiled.spec.name))
}

/// Leak-once string interner. The CLI sees a handful of scenario names
/// per process; the daemon sees the same names over and over — repeat
/// submissions must not grow the heap without bound.
fn intern(s: String) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut pool = POOL
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("intern pool");
    match pool.get(s.as_str()) {
        Some(&interned) => interned,
        None => {
            let leaked: &'static str = Box::leak(s.into_boxed_str());
            pool.insert(leaked);
            leaked
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results;

    const SMOKE: &str = r#"{
  "name": "adapter",
  "topology": "parallel",
  "tors": 16, "ports": 4, "host_gbps": 200,
  "seed": 5,
  "phases": [
    {"label": "warm", "workload": "poisson", "load": 50, "epochs": [0, 40]},
    {"label": "hot", "workload": "poisson", "load": 90, "epochs": [40, 80]}
  ],
  "events": [
    {"at_epoch": 40, "action": "fail_random", "ratio": 0.1, "seed": 3},
    {"at_epoch": 60, "action": "repair_links"}
  ]
}"#;

    fn compiled() -> CompiledScenario {
        compile(parse_scenario(SMOKE).unwrap(), Path::new(".")).unwrap()
    }

    #[test]
    fn scenario_report_carries_series_json() {
        let report = run(&compiled(), 2, 1);
        assert_eq!(report.id, "scenario-adapter");
        assert_eq!(report.results.len(), 2, "negotiator + oblivious");
        let json = results::experiment_json(&report, None);
        let runs = json.get("runs").unwrap().as_array().unwrap();
        for r in runs {
            let series = r
                .get("metrics")
                .unwrap()
                .get("series")
                .unwrap()
                .as_array()
                .unwrap();
            assert_eq!(series.len(), 2, "one row per phase");
            assert_eq!(series[0].get("label").unwrap().as_str(), Some("warm"));
            assert!(series[0]
                .get("goodput_normalized")
                .unwrap()
                .as_f64()
                .is_some());
        }
        // Round-trips through the parser.
        let text = json.render();
        assert_eq!(metrics::Json::parse(&text).unwrap(), json);
    }

    #[test]
    fn scenario_is_byte_identical_across_jobs() {
        let c = compiled();
        let serial = run(&c, 1, 1);
        let parallel = run(&c, 8, 1);
        assert_eq!(serial.rendered, parallel.rendered);
        let s = results::experiment_json(&serial, None).render();
        let p = results::experiment_json(&parallel, None).render();
        assert_eq!(s, p);
    }

    #[test]
    fn scenario_is_byte_identical_across_shard_workers() {
        let c = compiled();
        let sequential = run(&c, 1, 1);
        for workers in [2, 8] {
            let sharded = run(&c, 1, workers);
            assert_eq!(sequential.rendered, sharded.rendered, "{workers} workers");
            assert_eq!(
                deterministic_document(&sequential),
                deterministic_document(&sharded),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn serving_path_matches_batch_path_byte_for_byte() {
        let c = compiled();
        let batch = run(&c, 4, 1);
        let served = execute_with_progress(&c, None, 2);
        assert_eq!(batch.rendered, served.rendered);
        assert_eq!(
            deterministic_document(&batch),
            deterministic_document(&served)
        );
    }

    #[test]
    fn batch_coalesces_identical_runs_and_fans_out() {
        let c = compiled();
        // The same scenario twice: 4 requested engine runs, 2 simulated.
        let outcome = run_batch(&[c.clone(), c.clone()], 4, 1);
        assert_eq!(outcome.coalesced, 2);
        assert_eq!(outcome.reports.len(), 2);
        assert_eq!(outcome.reports[0].rendered, outcome.reports[1].rendered);
        assert_eq!(
            deterministic_document(&outcome.reports[0]),
            deterministic_document(&outcome.reports[1])
        );
        // Fan-out must produce the same bytes as simulating separately.
        let solo = run(&c, 4, 1);
        assert_eq!(outcome.reports[0].rendered, solo.rendered);
        // Duplicates carry no wall cost of their own.
        assert!(outcome.reports[1].runs_wall_secs() == 0.0);
        assert!(outcome.reports[0].runs_wall_secs() > 0.0);
        // Distinct scenarios coalesce nothing.
        let other = compile(
            parse_scenario(&SMOKE.replace("\"seed\": 5", "\"seed\": 6")).unwrap(),
            Path::new("."),
        )
        .unwrap();
        let outcome = run_batch(&[c, other], 4, 1);
        assert_eq!(outcome.coalesced, 0);
        assert_ne!(
            deterministic_document(&outcome.reports[0]),
            deterministic_document(&outcome.reports[1])
        );
    }
}
