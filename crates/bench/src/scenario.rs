//! Harness side of the scenario engine: load a scenario file, compile it
//! (`scenario::compile`), wrap its engine runs into sweep [`RunSpec`]s,
//! and execute them on the shared `--jobs` pool — the same machinery (and
//! therefore the same byte-identical-at-any-jobs guarantee) every
//! hard-coded experiment uses. The resulting [`SweepReport`] flows through
//! `results::write_reports` unchanged, so a scenario's JSON lands as
//! `results/scenario-<name>.json` with the per-phase time series under
//! each run's `metrics.series`.

use std::path::Path;

use crate::experiments::Args;
use crate::sweep::{self, Rendered, RunMeta, RunMetrics, RunSpec, SweepReport};
use scenario::series::stats_to_json;
// Re-exported so the `paper` binary reaches the scenario crate's API
// through this module.
pub use scenario::{build_runs, compile, parse_scenario, CompiledScenario, WorkloadPhase};

/// Load, parse and validate a scenario file, compiling it to run inputs.
/// Every error is prefixed with the file path; validation errors point at
/// `line:column` inside it.
pub fn load(path: &Path) -> Result<CompiledScenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let spec = parse_scenario(&text).map_err(|e| format!("{}:{e}", path.display()))?;
    let base_dir = path.parent().unwrap_or_else(|| Path::new("."));
    compile(spec, base_dir).map_err(|e| format!("{}: {e}", path.display()))
}

/// Execute a compiled scenario across `jobs` workers and assemble the
/// sweep report (rendered text + per-run metrics with series).
pub fn run(compiled: &CompiledScenario, jobs: usize) -> SweepReport {
    let spec = &compiled.spec;
    // Sweep metadata wants 'static strs; a handful of scenario names per
    // process makes leaking the right trade.
    let id: &'static str = Box::leak(format!("scenario-{}", spec.name).into_boxed_str());
    let artifact: &'static str = Box::leak(
        format!(
            "Scenario '{}'{}{}",
            spec.name,
            if spec.description.is_empty() {
                ""
            } else {
                ": "
            },
            spec.description
        )
        .into_boxed_str(),
    );
    let args = Args {
        duration: compiled.duration,
        loads: Vec::new(),
        seed: spec.seed,
    };
    let specs: Vec<RunSpec> = build_runs(compiled)
        .into_iter()
        .enumerate()
        .map(|(index, run)| {
            let meta = RunMeta::new(id, index, run.system, &args).duration(compiled.duration);
            let body = run.run;
            RunSpec::new(meta, move || {
                let out = body();
                let mut metrics = RunMetrics::new(Rendered::Block(out.rendered))
                    .with_series(stats_to_json(&out.series))
                    .with_match_ratio(out.match_ratio);
                metrics.report = Some(out.summary);
                metrics
            })
        })
        .collect();
    let results = sweep::execute_specs(specs, jobs);
    let mut rendered = format!(
        "# Scenario '{}' — {} phases, {} events, {} flows over {} epochs ({:.3} ms)\n",
        spec.name,
        spec.phases.len(),
        spec.events.len(),
        compiled.trace.len(),
        spec.total_epochs(),
        compiled.duration as f64 / 1e6,
    );
    for result in &results {
        rendered.push('\n');
        rendered.push_str(result.block());
    }
    SweepReport {
        id,
        artifact,
        args,
        results,
        rendered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results;

    const SMOKE: &str = r#"{
  "name": "adapter",
  "topology": "parallel",
  "tors": 16, "ports": 4, "host_gbps": 200,
  "seed": 5,
  "phases": [
    {"label": "warm", "workload": "poisson", "load": 50, "epochs": [0, 40]},
    {"label": "hot", "workload": "poisson", "load": 90, "epochs": [40, 80]}
  ],
  "events": [
    {"at_epoch": 40, "action": "fail_random", "ratio": 0.1, "seed": 3},
    {"at_epoch": 60, "action": "repair_links"}
  ]
}"#;

    fn compiled() -> CompiledScenario {
        compile(parse_scenario(SMOKE).unwrap(), Path::new(".")).unwrap()
    }

    #[test]
    fn scenario_report_carries_series_json() {
        let report = run(&compiled(), 2);
        assert_eq!(report.id, "scenario-adapter");
        assert_eq!(report.results.len(), 2, "negotiator + oblivious");
        let json = results::experiment_json(&report, None);
        let runs = json.get("runs").unwrap().as_array().unwrap();
        for r in runs {
            let series = r
                .get("metrics")
                .unwrap()
                .get("series")
                .unwrap()
                .as_array()
                .unwrap();
            assert_eq!(series.len(), 2, "one row per phase");
            assert_eq!(series[0].get("label").unwrap().as_str(), Some("warm"));
            assert!(series[0]
                .get("goodput_normalized")
                .unwrap()
                .as_f64()
                .is_some());
        }
        // Round-trips through the parser.
        let text = json.render();
        assert_eq!(metrics::Json::parse(&text).unwrap(), json);
    }

    #[test]
    fn scenario_is_byte_identical_across_jobs() {
        let c = compiled();
        let serial = run(&c, 1);
        let parallel = run(&c, 8);
        assert_eq!(serial.rendered, parallel.rendered);
        let s = results::experiment_json(&serial, None).render();
        let p = results::experiment_json(&parallel, None).render();
        assert_eq!(s, p);
    }
}
