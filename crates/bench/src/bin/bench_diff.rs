//! Compare two sweep-result directories and gate on regressions.
//!
//! ```text
//! bench-diff <baseline-dir> <current-dir> [--tolerance PCT]
//! ```
//!
//! Reads every `<id>.json` the baseline directory holds (as written by
//! `paper --json --out DIR`), finds the matching file in the current
//! directory, and compares all numeric metrics run by run. Exits 1 when
//! any metric moved more than the tolerance (default 5%), when runs or
//! metrics appear/vanish, or when a baseline file has no current
//! counterpart; wall-clock fields never gate, but when both sides carry
//! timing the current/baseline wall-time ratio is printed as an
//! informational note. Experiments present only in the current directory
//! are reported but do not fail the gate — new experiments need a
//! baseline refresh, not a red build.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use bench::results::{diff_reports, wall_time_ratio};
use metrics::Json;

struct Options {
    baseline: PathBuf,
    current: PathBuf,
    tolerance_pct: f64,
}

fn main() -> ExitCode {
    let options = match parse(std::env::args().skip(1).collect()) {
        Ok(options) => options,
        Err(error) => {
            eprintln!("error: {error}");
            eprintln!("usage: bench-diff <baseline-dir> <current-dir> [--tolerance PCT]");
            return ExitCode::from(2);
        }
    };
    let baseline_files = match result_files(&options.baseline) {
        Ok(files) => files,
        Err(error) => {
            eprintln!("error: reading {}: {error}", options.baseline.display());
            return ExitCode::from(2);
        }
    };
    if baseline_files.is_empty() {
        eprintln!(
            "error: no .json result files in {}",
            options.baseline.display()
        );
        return ExitCode::from(2);
    }
    let mut failures: Vec<String> = Vec::new();
    let mut compared = 0usize;
    for file in &baseline_files {
        let id = file.file_stem().and_then(|s| s.to_str()).unwrap_or("?");
        let current_path = options.current.join(file.file_name().expect("file name"));
        if !current_path.exists() {
            failures.push(format!(
                "{id}: baseline file {} has no counterpart in {}",
                file.display(),
                options.current.display()
            ));
            continue;
        }
        match (load(file), load(&current_path)) {
            (Ok(baseline), Ok(current)) => {
                let diffs = diff_reports(id, &baseline, &current, options.tolerance_pct);
                // Wall time is informational only (hardware-dependent),
                // shown so perf work is visible next to the metric gate.
                let wall = wall_time_ratio(&baseline, &current)
                    .map_or(String::new(), |r| format!(", wall-time ratio {r:.2}x"));
                println!(
                    "{id}: {} ({} runs{wall})",
                    if diffs.is_empty() { "OK" } else { "REGRESSED" },
                    baseline
                        .get("runs")
                        .and_then(Json::as_array)
                        .map_or(0, <[Json]>::len),
                );
                failures.extend(diffs);
                compared += 1;
            }
            (Err(error), _) => failures.push(format!("{id}: parsing baseline: {error}")),
            (_, Err(error)) => failures.push(format!("{id}: parsing current: {error}")),
        }
    }
    // Extra files in current are informational only.
    if let Ok(current_files) = result_files(&options.current) {
        for file in current_files {
            if !options
                .baseline
                .join(file.file_name().expect("name"))
                .exists()
            {
                println!(
                    "note: {} has no baseline (refresh results/baseline to start gating it)",
                    file.display()
                );
            }
        }
    }
    if failures.is_empty() {
        println!(
            "bench-diff: {compared} experiment(s) within {}% tolerance",
            options.tolerance_pct
        );
        ExitCode::SUCCESS
    } else {
        eprintln!();
        for failure in &failures {
            eprintln!("FAIL {failure}");
        }
        eprintln!(
            "bench-diff: {} regression(s) beyond {}% tolerance",
            failures.len(),
            options.tolerance_pct
        );
        ExitCode::FAILURE
    }
}

fn parse(argv: Vec<String>) -> Result<Options, String> {
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut tolerance_pct = 5.0;
    let mut it = argv.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance needs a value")?;
                tolerance_pct = v
                    .parse()
                    .map_err(|_| format!("--tolerance: '{v}' is not a number"))?;
                if !(0.0..=1000.0).contains(&tolerance_pct) {
                    return Err(format!("--tolerance: {tolerance_pct} out of range"));
                }
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            dir => dirs.push(PathBuf::from(dir)),
        }
    }
    if dirs.len() != 2 {
        return Err(format!("expected 2 directories, got {}", dirs.len()));
    }
    let current = dirs.pop().expect("two dirs");
    let baseline = dirs.pop().expect("two dirs");
    Ok(Options {
        baseline,
        current,
        tolerance_pct,
    })
}

/// All `*.json` files directly inside `dir`, sorted by name for stable
/// output.
fn result_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|e| e == "json") && path.is_file())
        .collect();
    files.sort();
    Ok(files)
}

fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    Json::parse(&text)
}
