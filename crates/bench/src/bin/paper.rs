//! Regenerate the paper's tables and figures.
//!
//! ```text
//! paper <experiment-id>... [--duration-ms N] [--loads 10,50,100]
//! paper all [--duration-ms N]
//! paper list
//! ```

use bench::{run_experiment, Args, EXPERIMENTS};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
        return;
    }
    let mut args = Args::default();
    let mut ids: Vec<String> = Vec::new();
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--duration-ms" => {
                let v = it.next().expect("--duration-ms needs a value");
                let ms: f64 = v.parse().expect("--duration-ms must be a number");
                args.duration = (ms * 1e6) as u64;
            }
            "--seed" => {
                let v = it.next().expect("--seed needs a value");
                args.seed = v.parse().expect("--seed must be an integer");
            }
            "--loads" => {
                let v = it.next().expect("--loads needs a comma-separated list");
                args.loads = v
                    .split(',')
                    .map(|s| s.parse::<f64>().expect("load must be a number") / 100.0)
                    .collect();
            }
            "list" => {
                for (id, desc) in EXPERIMENTS {
                    println!("{id:<8} {desc}");
                }
                return;
            }
            "all" => ids.extend(EXPERIMENTS.iter().map(|(id, _)| id.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        usage();
        return;
    }
    println!(
        "# NegotiaToR reproduction — duration {} ms per run, loads {:?}\n",
        args.duration as f64 / 1e6,
        args.loads.iter().map(|l| l * 100.0).collect::<Vec<_>>()
    );
    for id in ids {
        let started = std::time::Instant::now();
        match run_experiment(&id, &args) {
            Some(output) => {
                println!("{output}");
                eprintln!("[{id} done in {:.1?}]", started.elapsed());
            }
            None => eprintln!("unknown experiment '{id}' — try `paper list`"),
        }
    }
}

fn usage() {
    eprintln!("usage: paper <experiment-id>|all|list [--duration-ms N] [--loads 10,50,100] [--seed N]");
    eprintln!("experiments:");
    for (id, desc) in EXPERIMENTS {
        eprintln!("  {id:<8} {desc}");
    }
}
