//! Regenerate the paper's tables and figures.
//!
//! ```text
//! paper <experiment-id>... [--duration-ms N] [--loads 10,50,100] [--seed N]
//!       [--jobs N] [--json] [--out DIR] [--seeds A,B,C]
//! paper all --jobs 8 --json --out results/
//! paper list
//! ```
//!
//! Experiments expand into independent runs executed across `--jobs`
//! worker threads; output is byte-identical at any job count. `--json`
//! writes one machine-readable `results/<id>.json` per experiment
//! (schema: see `bench::results`), which `bench-diff` compares across
//! revisions to gate CI on regressions.

use bench::experiments::{find_experiment, Args, Experiment, EXPERIMENTS};
use bench::{cli, results, sweep};

fn main() {
    let parsed = cli::parse(std::env::args().skip(1).collect());
    let cli = match parsed {
        Ok(cli) => cli,
        Err(error) => {
            eprintln!("error: {error}\n");
            usage();
            std::process::exit(2);
        }
    };
    if cli.list {
        for exp in EXPERIMENTS {
            println!("{:<8} {}", exp.id(), exp.artifact());
        }
        return;
    }
    if cli.ids.is_empty() {
        usage();
        std::process::exit(2);
    }
    let exps: Vec<&'static dyn Experiment> = cli
        .ids
        .iter()
        .map(|id| find_experiment(id).expect("ids validated by the parser"))
        .collect();
    let multi_seed = cli.seeds.len() > 1;
    for &seed in &cli.seeds {
        let args = Args {
            seed,
            ..cli.args.clone()
        };
        println!(
            "# NegotiaToR reproduction — duration {} ms per run, loads {:?}, seed {seed}\n",
            args.duration as f64 / 1e6,
            args.loads.iter().map(|l| l * 100.0).collect::<Vec<_>>(),
        );
        eprintln!("[{} experiments across {} jobs]", exps.len(), cli.jobs);
        let started = std::time::Instant::now();
        let reports = sweep::run_sweep(&exps, &args, cli.jobs);
        for report in &reports {
            println!("{}", report.rendered);
            eprintln!(
                "[{}: {} runs, {:.1}s simulated-run time]",
                report.id,
                report.results.len(),
                report.runs_wall_secs()
            );
        }
        if cli.json {
            match results::write_reports(&cli.out, &reports, cli.jobs, multi_seed) {
                Ok(paths) => {
                    for path in paths {
                        eprintln!("[wrote {}]", path.display());
                    }
                }
                Err(error) => {
                    eprintln!("error: writing {}: {error}", cli.out.display());
                    std::process::exit(1);
                }
            }
        }
        eprintln!(
            "[sweep of {} experiments done in {:.1?}]",
            reports.len(),
            started.elapsed()
        );
    }
}

fn usage() {
    eprintln!(
        "usage: paper <experiment-id>|all|list [--duration-ms N] [--loads 10,50,100]\n\
         \u{20}      [--seed N | --seeds A,B,C] [--jobs N] [--json] [--out DIR]"
    );
    eprintln!("experiments:");
    for exp in EXPERIMENTS {
        eprintln!("  {:<8} {}", exp.id(), exp.artifact());
    }
}
