//! Regenerate the paper's tables and figures.
//!
//! ```text
//! paper <experiment-id>... [--duration-ms N] [--loads 10,50,100] [--seed N]
//!       [--jobs N] [--json] [--out DIR] [--seeds A,B,C]
//! paper all --jobs 8 --json --out results/
//! paper scenario scenarios/rolling_failures.json [--jobs N] [--json] [--out DIR]
//! paper list
//! ```
//!
//! Experiments expand into independent runs executed across `--jobs`
//! worker threads; output is byte-identical at any job count. `--json`
//! writes one machine-readable `results/<id>.json` per experiment
//! (schema: see `bench::results`), which `bench-diff` compares across
//! revisions to gate CI on regressions. `paper scenario` runs a
//! declarative scenario file through both engines on the same machinery
//! (schema: README "Scenarios"); `paper list` enumerates the shipped
//! `scenarios/` library alongside the experiment registry.

use std::path::Path;

use bench::experiments::{find_experiment, Args, Experiment, EXPERIMENTS};
use bench::{cli, results, scenario, sweep};

fn main() {
    let parsed = cli::parse(std::env::args().skip(1).collect());
    let cli = match parsed {
        Ok(cli) => cli,
        Err(error) => {
            eprintln!("error: {error}\n");
            usage();
            std::process::exit(2);
        }
    };
    if cli.list {
        for exp in EXPERIMENTS {
            println!("{:<8} {}", exp.id(), exp.artifact());
        }
        list_scenarios(Path::new("scenarios"));
        return;
    }
    if let Some(path) = &cli.scenario {
        run_scenario(path, &cli);
        return;
    }
    if cli.ids.is_empty() {
        usage();
        std::process::exit(2);
    }
    let exps: Vec<&'static dyn Experiment> = cli
        .ids
        .iter()
        .map(|id| find_experiment(id).expect("ids validated by the parser"))
        .collect();
    let multi_seed = cli.seeds.len() > 1;
    for &seed in &cli.seeds {
        let args = Args {
            seed,
            ..cli.args.clone()
        };
        println!(
            "# NegotiaToR reproduction — duration {} ms per run, loads {:?}, seed {seed}\n",
            args.duration as f64 / 1e6,
            args.loads.iter().map(|l| l * 100.0).collect::<Vec<_>>(),
        );
        eprintln!("[{} experiments across {} jobs]", exps.len(), cli.jobs);
        let started = std::time::Instant::now();
        let reports = sweep::run_sweep(&exps, &args, cli.jobs);
        for report in &reports {
            println!("{}", report.rendered);
            eprintln!(
                "[{}: {} runs, {:.1}s simulated-run time]",
                report.id,
                report.results.len(),
                report.runs_wall_secs()
            );
        }
        if cli.json {
            match results::write_reports(&cli.out, &reports, cli.jobs, multi_seed) {
                Ok(paths) => {
                    for path in paths {
                        eprintln!("[wrote {}]", path.display());
                    }
                }
                Err(error) => {
                    eprintln!("error: writing {}: {error}", cli.out.display());
                    std::process::exit(1);
                }
            }
        }
        eprintln!(
            "[sweep of {} experiments done in {:.1?}]",
            reports.len(),
            started.elapsed()
        );
    }
}

/// Run one scenario file: validate + compile (any problem exits before a
/// single epoch simulates), execute on the shared pool, print the report
/// and optionally write `results/scenario-<name>.json`.
fn run_scenario(path: &Path, cli: &cli::Cli) {
    let compiled = match scenario::load(path) {
        Ok(compiled) => compiled,
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "[scenario '{}': {} runs across {} jobs]",
        compiled.spec.name,
        compiled.spec.engines.len(),
        cli.jobs
    );
    let started = std::time::Instant::now();
    let report = scenario::run(&compiled, cli.jobs);
    println!("{}", report.rendered);
    if cli.json {
        match results::write_reports(&cli.out, std::slice::from_ref(&report), cli.jobs, false) {
            Ok(paths) => {
                for path in paths {
                    eprintln!("[wrote {}]", path.display());
                }
            }
            Err(error) => {
                eprintln!("error: writing {}: {error}", cli.out.display());
                std::process::exit(1);
            }
        }
    }
    eprintln!("[scenario done in {:.1?}]", started.elapsed());
}

/// Enumerate the scenario library next to the experiment registry: every
/// `*.json` in `dir` (sorted), with its description — or its validation
/// error, so a broken library file is visible right in `paper list`.
fn list_scenarios(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return; // no scenarios/ directory here — nothing to list
    };
    let mut files: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    if files.is_empty() {
        return;
    }
    println!("\nscenarios (paper scenario <file>):");
    for file in files {
        // Parse + validate, plus an existence check on referenced trace
        // files — broken library files must be visible right here, but
        // listing must stay O(file size), not O(simulated horizon), so
        // the full compile (workload synthesis) waits for `paper
        // scenario`.
        let line = match std::fs::read_to_string(&file)
            .map_err(|e| e.to_string())
            .and_then(|text| scenario::parse_scenario(&text).map_err(|e| e.to_string()))
        {
            Ok(spec) => {
                let base = file.parent().unwrap_or(Path::new("."));
                let missing = spec.phases.iter().find_map(|p| match &p.workload {
                    scenario::WorkloadPhase::Trace { path } if !base.join(path).is_file() => {
                        Some(path.clone())
                    }
                    _ => None,
                });
                match missing {
                    Some(path) => format!("INVALID — trace file '{path}' not found"),
                    None => spec.description,
                }
            }
            Err(error) => format!("INVALID — {error}"),
        };
        println!("{:<36} {line}", file.display().to_string());
    }
}

fn usage() {
    eprintln!(
        "usage: paper <experiment-id>|all|list [--duration-ms N] [--loads 10,50,100]\n\
         \u{20}      [--seed N | --seeds A,B,C] [--jobs N] [--json] [--out DIR]\n\
         \u{20}      paper scenario <file.json> [--jobs N] [--json] [--out DIR]"
    );
    eprintln!("experiments:");
    for exp in EXPERIMENTS {
        eprintln!("  {:<8} {}", exp.id(), exp.artifact());
    }
}
