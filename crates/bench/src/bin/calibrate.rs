//! Quick shape calibration at paper scale (not a paper experiment):
//! one line per load comparing NegotiaToR and the baseline on goodput,
//! mice tail FCT and completion rate, with wall-clock timings.
//!
//! ```text
//! cargo run --release -p bench --bin calibrate [duration_ns] [relay_pair_packets]
//! ```
//!
//! Used to tune `ObliviousConfig::relay_pair_packets` (see DESIGN.md's
//! baseline-substitution note) and to spot-check engine performance.

use bench::runs::*;
use negotiator::{NegotiatorConfig, SimOptions};
use oblivious::ObliviousConfig;
use topology::{NetworkConfig, TopologyKind};
use workload::FlowSizeDist;

fn main() {
    let duration: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().unwrap())
        .unwrap_or(2_000_000);
    let net = NetworkConfig::paper_default();
    for load in [0.25, 0.5, 1.0] {
        let trace = background(FlowSizeDist::hadoop(), load, &net, duration);
        let t0 = std::time::Instant::now();
        let (mut rn, _) = run_negotiator(
            NegotiatorConfig::paper_default(net.clone()),
            TopologyKind::Parallel,
            SimOptions::default(),
            &trace,
            duration,
            1,
        );
        let tn = t0.elapsed();
        let t1 = std::time::Instant::now();
        let mut ocfg = ObliviousConfig::paper_default(net.clone());
        if let Some(pk) = std::env::args().nth(2) {
            ocfg.relay_pair_packets = pk.parse().unwrap();
        }
        let (mut ro, _) = run_oblivious(ocfg, TopologyKind::ThinClos, &trace, duration, 1);
        let tob = t1.elapsed();
        println!(
            "load {:>4}: NEGO goodput {:.3} mice99 {:>9.1}us cr {:.3} ({:?}) | OBLV goodput {:.3} mice99 {:>9.1}us cr {:.3} ({:?}) flows {}",
            load,
            rn.goodput.normalized(),
            rn.mice.p99_ns() / 1000.0,
            rn.mice.completion_rate(),
            tn,
            ro.goodput.normalized(),
            ro.mice.p99_ns() / 1000.0,
            ro.mice.completion_rate(),
            tob,
            trace.len()
        );
    }
}
