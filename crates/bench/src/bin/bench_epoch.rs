//! Epoch-engine scaling bench: fabric size × intra-run shard workers.
//!
//! ```text
//! bench-epoch [--sizes 256,512,1024,2048,4096] [--workers-list 1,2,4]
//!             [--epochs N] [--load PCT] [--out FILE]
//! ```
//!
//! For every fabric size the bench builds the paper's parallel network at
//! that ToR count, synthesizes one Poisson trace spanning `--epochs`
//! epochs, and plays it through `NegotiatorSim` once per `--workers-list`
//! entry, timing the whole run. The output document is `bench-diff`
//! compatible (same `schema_version`/`config`/`runs[].metrics` layout the
//! sweep writer uses):
//!
//! * **Inside `metrics`** — only deterministic simulation results
//!   (delivered bytes, completion counts, percentiles). The tentpole
//!   guarantee makes these byte-identical at any worker count and on any
//!   machine, so CI gates on them byte-for-byte.
//! * **Outside `metrics`** — wall-clock observations (`wall_secs`,
//!   `epochs_per_sec`) and `host_parallelism`. These vary by machine and
//!   are informational only; `bench-diff` never gates on them.

use std::path::PathBuf;
use std::process::ExitCode;

use bench::runs::{background_seeded, SEED};
use metrics::Json;
use negotiator::{NegotiatorConfig, NegotiatorSim, SimOptions};
use sim::Bandwidth;
use topology::{NetworkConfig, TopologyKind};
use workload::FlowSizeDist;

struct Options {
    sizes: Vec<usize>,
    workers_list: Vec<usize>,
    epochs: u64,
    load: f64,
    out: Option<PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            sizes: vec![256, 512, 1024, 2048, 4096],
            workers_list: vec![1, 2, 4],
            epochs: 20,
            load: 0.6,
            out: None,
        }
    }
}

fn main() -> ExitCode {
    let options = match parse(std::env::args().skip(1).collect()) {
        Ok(options) => options,
        Err(error) => {
            eprintln!("error: {error}");
            eprintln!(
                "usage: bench-epoch [--sizes N,N,...] [--workers-list N,N,...] \
                 [--epochs N] [--load PCT] [--out FILE]"
            );
            return ExitCode::from(2);
        }
    };
    let document = run_bench(&options);
    let text = format!("{}\n", document.render());
    match &options.out {
        Some(path) => {
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                if let Err(error) = std::fs::create_dir_all(dir) {
                    eprintln!("error: creating {}: {error}", dir.display());
                    return ExitCode::from(1);
                }
            }
            if let Err(error) = std::fs::write(path, &text) {
                eprintln!("error: writing {}: {error}", path.display());
                return ExitCode::from(1);
            }
            eprintln!("[wrote {}]", path.display());
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

/// The paper's network geometry at an arbitrary ToR count (sizes must be
/// divisible by the 8 uplink ports for topology validity).
fn sized_net(n_tors: usize) -> NetworkConfig {
    NetworkConfig {
        n_tors,
        n_ports: 8,
        port_bandwidth: Bandwidth::from_gbps(100),
        host_bandwidth: Bandwidth::from_gbps(400),
        propagation_delay: 2_000,
    }
}

fn run_bench(options: &Options) -> Json {
    let host_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut total_run_secs = 0.0;
    let mut runs = Vec::new();
    for &size in &options.sizes {
        let net = sized_net(size);
        // One probe sim fixes the epoch length (it depends only on the
        // geometry); the trace then spans exactly `--epochs` epochs.
        let epoch_len =
            NegotiatorSim::new(NegotiatorConfig::paper_default(net.clone()), KIND).epoch_len();
        let duration = options.epochs * epoch_len;
        let trace = background_seeded(FlowSizeDist::hadoop(), options.load, &net, duration, SEED);
        eprintln!(
            "[size {size}: epoch {} ns, {} flows over {} epochs]",
            epoch_len,
            trace.len(),
            options.epochs
        );
        for &workers in &options.workers_list {
            let mut sim = NegotiatorSim::with_options(
                NegotiatorConfig::paper_default(net.clone()),
                KIND,
                SimOptions {
                    workers,
                    ..SimOptions::default()
                },
            );
            let started = std::time::Instant::now();
            let mut report = sim.run(&trace, duration);
            let wall_secs = started.elapsed().as_secs_f64();
            total_run_secs += wall_secs;
            let epochs_per_sec = options.epochs as f64 / wall_secs;
            eprintln!(
                "[size {size} workers {workers}: {wall_secs:.3}s, {epochs_per_sec:.2} epochs/s]"
            );
            let mut metrics = Json::object();
            metrics
                .push("delivered_bytes", report.goodput.delivered_bytes)
                .push("completed", report.all.completed as u64)
                .push("total_flows", report.all.total as u64)
                .push("p99_ns", report.all.p99_ns() as u64)
                .push("mice_p99_ns", report.mice.p99_ns() as u64);
            let mut run = Json::object();
            run.push("index", runs.len() as u64)
                .push("system", "nego/parallel")
                .push("param", size as f64)
                .push("workers", workers as u64)
                .push("seed", SEED)
                .push("duration_ns", duration)
                .push("metrics", metrics)
                // Informational, machine-dependent — never gated.
                .push("wall_secs", wall_secs)
                .push("epochs_per_sec", epochs_per_sec);
            runs.push(run);
        }
    }
    let mut config = Json::object();
    config
        .push(
            "sizes",
            Json::Arr(
                options
                    .sizes
                    .iter()
                    .map(|&s| Json::from(s as u64))
                    .collect(),
            ),
        )
        .push(
            "workers_list",
            Json::Arr(
                options
                    .workers_list
                    .iter()
                    .map(|&w| Json::from(w as u64))
                    .collect(),
            ),
        )
        .push("epochs", options.epochs)
        .push("load", options.load)
        .push("seed", SEED);
    let mut root = Json::object();
    root.push("schema_version", 1u64)
        .push("experiment", "epoch")
        .push(
            "artifact",
            "Epoch-engine scaling: fabric size x shard workers",
        )
        .push("config", config)
        .push("runs", Json::Arr(runs))
        // Informational: where the wall numbers came from. The `timing`
        // stanza matches the sweep writer's, so `bench-diff` prints the
        // current/baseline wall-time ratio as its usual note.
        .push("host_parallelism", host_parallelism as u64);
    let mut timing = Json::object();
    timing.push("total_run_secs", total_run_secs);
    root.push("timing", timing);
    root
}

const KIND: TopologyKind = TopologyKind::Parallel;

fn parse(argv: Vec<String>) -> Result<Options, String> {
    let mut options = Options::default();
    let mut it = argv.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sizes" => {
                options.sizes = parse_list(&value(&mut it, "--sizes")?, "--sizes")?;
                for &s in &options.sizes {
                    if s < 16 || s % 8 != 0 {
                        return Err(format!(
                            "--sizes: {s} must be >= 16 and divisible by 8 uplink ports"
                        ));
                    }
                }
            }
            "--workers-list" => {
                options.workers_list =
                    parse_list(&value(&mut it, "--workers-list")?, "--workers-list")?;
                if options.workers_list.contains(&0) {
                    return Err("--workers-list: need at least 1 worker".into());
                }
            }
            "--epochs" => {
                let v = value(&mut it, "--epochs")?;
                options.epochs = v
                    .parse()
                    .map_err(|_| format!("--epochs: '{v}' is not an integer"))?;
                if options.epochs == 0 {
                    return Err("--epochs: need at least 1 epoch".into());
                }
            }
            "--load" => {
                let v = value(&mut it, "--load")?;
                let pct: f64 = v
                    .parse()
                    .map_err(|_| format!("--load: '{v}' is not a number"))?;
                if !pct.is_finite() || pct <= 0.0 || pct > 100.0 {
                    return Err(format!("--load: {pct}% is out of (0, 100]"));
                }
                options.load = pct / 100.0;
            }
            "--out" => options.out = Some(PathBuf::from(value(&mut it, "--out")?)),
            flag => return Err(format!("unknown flag '{flag}'")),
        }
    }
    Ok(options)
}

fn parse_list(v: &str, flag: &str) -> Result<Vec<usize>, String> {
    let list: Vec<usize> = v
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("{flag}: '{s}' is not an integer"))
        })
        .collect::<Result<_, _>>()?;
    if list.is_empty() {
        return Err(format!("{flag}: need at least one entry"));
    }
    Ok(list)
}

fn value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}
