//! Trace forensics: the query and diff engines behind `paper trace query`
//! and `paper trace diff`, shared with the daemon's `GET /jobs/<id>/flows`
//! endpoint ([`flows_json`] is the single implementation both sides call).
//!
//! The input is flight-recorder NDJSON (`metrics::trace`): one engine
//! section per `trace_start`/`trace_end` pair, one event per line. Queries
//! filter events (`--kind`, `--tor`, `--flow`, `--epoch A..B`) and
//! aggregate them — per-epoch event counts, per-flow span timelines, and
//! the slowest-N completed flows with their control-message history.
//! Diffing locates the first divergent event between two traces and names
//! it (epoch + kind + ToR/flow), with aligned context on each side — so a
//! determinism-gate failure reads as "epoch 41, flow_grant, pair 3→7"
//! instead of "bytes differ".

use metrics::Json;

/// Epoch rows a text query prints before eliding (the elision is counted,
/// never silent).
const MAX_EPOCH_ROWS: usize = 64;
/// Event lines a `--flow` timeline prints before eliding.
const MAX_TIMELINE_ROWS: usize = 200;

/// One parsed trace event with its raw line retained for display.
#[derive(Debug, Clone)]
pub struct Ev {
    /// The `"event"` field.
    pub kind: String,
    /// The `"epoch"` field (slot index for the rotor).
    pub epoch: u64,
    /// The parsed line, for field lookups.
    pub json: Json,
    /// The raw NDJSON line.
    pub line: String,
}

impl Ev {
    fn field(&self, key: &str) -> Option<u64> {
        self.json.get(key).and_then(Json::as_u64)
    }

    /// The flow id, for flow-lifecycle events.
    pub fn flow(&self) -> Option<u64> {
        self.field("flow")
    }

    /// True when the event mentions ToR `tor` (as `tor`, `src` or `dst`).
    pub fn mentions_tor(&self, tor: u64) -> bool {
        [self.field("tor"), self.field("src"), self.field("dst")]
            .into_iter()
            .flatten()
            .any(|t| t == tor)
    }
}

/// One engine section of a parsed trace.
#[derive(Debug, Clone)]
pub struct Section {
    /// Engine label from the `trace_start` header.
    pub system: String,
    /// Events in file order.
    pub events: Vec<Ev>,
    /// Ring-overflow count from the `trace_end` footer.
    pub dropped: u64,
}

/// A fully parsed trace file.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Engine sections in file order.
    pub sections: Vec<Section>,
}

/// Parse flight-recorder NDJSON into sections. Errors name the offending
/// 1-based line — traces are machine-written, so any failure means the
/// file is not a trace.
pub fn parse(text: &str) -> Result<Trace, String> {
    let mut sections: Vec<Section> = Vec::new();
    let mut current: Option<Section> = None;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let event = v
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing \"event\" field", i + 1))?;
        match event {
            "trace_start" => {
                if let Some(done) = current.take() {
                    sections.push(done);
                }
                current = Some(Section {
                    system: v
                        .get("system")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    events: Vec::new(),
                    dropped: 0,
                });
            }
            "trace_end" => {
                let mut done = current
                    .take()
                    .ok_or_else(|| format!("line {}: trace_end without trace_start", i + 1))?;
                done.dropped = v.get("dropped").and_then(Json::as_u64).unwrap_or(0);
                sections.push(done);
            }
            kind => {
                let section = current
                    .as_mut()
                    .ok_or_else(|| format!("line {}: event before trace_start", i + 1))?;
                let epoch = v.get("epoch").and_then(Json::as_u64).unwrap_or(0);
                section.events.push(Ev {
                    kind: kind.to_string(),
                    epoch,
                    json: v,
                    line: line.to_string(),
                });
            }
        }
    }
    if let Some(unterminated) = current {
        return Err(format!(
            "trace for '{}' has no trace_end line (truncated file?)",
            unterminated.system
        ));
    }
    if sections.is_empty() {
        return Err("no trace sections found (is this a --trace output file?)".to_string());
    }
    Ok(Trace { sections })
}

/// Sum of ring-overflow drop counts across every `trace_end` footer.
/// Lenient — lines that do not parse count zero — so the daemon can call
/// it on any stored trace without a second error path.
pub fn dropped_total(text: &str) -> u64 {
    text.lines()
        .filter(|l| l.contains("\"event\":\"trace_end\""))
        .filter_map(|l| Json::parse(l).ok())
        .filter(|v| v.get("event").and_then(Json::as_str) == Some("trace_end"))
        .filter_map(|v| v.get("dropped").and_then(Json::as_u64))
        .sum()
}

// ---------------------------------------------------------------------
// Per-flow span timelines
// ---------------------------------------------------------------------

/// One flow's reconstructed lifecycle within one engine section.
#[derive(Debug, Clone, Default)]
pub struct FlowSpanRow {
    /// Flow id.
    pub flow: u64,
    /// Source ToR (from `flow_born` or `flow_complete`).
    pub src: u64,
    /// Destination ToR.
    pub dst: u64,
    /// Flow size in bytes (0 when the birth fell outside the ring window).
    pub bytes: u64,
    /// Epoch of each milestone, when observed.
    pub born: Option<u64>,
    /// Epoch the first covering REQUEST was sent.
    pub request: Option<u64>,
    /// Epoch the first covering GRANT was issued.
    pub grant: Option<u64>,
    /// Epoch the first covering ACCEPT was made.
    pub accept: Option<u64>,
    /// Epoch the first payload bytes moved.
    pub first_tx: Option<u64>,
    /// Epoch the last byte was delivered.
    pub complete: Option<u64>,
    /// Flow completion time in ns, once complete.
    pub fct_ns: Option<u64>,
}

/// Reconstruct per-flow span rows from one section's events, in flow-id
/// order. Flows are included from their first sighted span event, so a
/// ring overflow degrades the table instead of emptying it.
pub fn flow_rows(section: &Section) -> Vec<FlowSpanRow> {
    let mut rows: Vec<FlowSpanRow> = Vec::new();
    let mut index_of: Vec<(u64, usize)> = Vec::new(); // sorted by flow id
    for ev in &section.events {
        let Some(flow) = ev.flow() else { continue };
        let slot = match index_of.binary_search_by_key(&flow, |&(id, _)| id) {
            Ok(found) => index_of[found].1,
            Err(insert) => {
                rows.push(FlowSpanRow {
                    flow,
                    ..FlowSpanRow::default()
                });
                index_of.insert(insert, (flow, rows.len() - 1));
                rows.len() - 1
            }
        };
        let row = &mut rows[slot];
        match ev.kind.as_str() {
            "flow_born" => {
                row.born = Some(ev.epoch);
                row.src = ev.field("src").unwrap_or(0);
                row.dst = ev.field("dst").unwrap_or(0);
                row.bytes = ev.field("bytes").unwrap_or(0);
            }
            "flow_request" => row.request = Some(ev.epoch),
            "flow_grant" => row.grant = Some(ev.epoch),
            "flow_accept" => row.accept = Some(ev.epoch),
            "flow_first_tx" => row.first_tx = Some(ev.epoch),
            "flow_complete" => {
                row.complete = Some(ev.epoch);
                row.fct_ns = ev.field("fct_ns");
                if row.born.is_none() {
                    row.src = ev.field("src").unwrap_or(row.src);
                    row.dst = ev.field("dst").unwrap_or(row.dst);
                }
            }
            _ => {}
        }
    }
    rows.sort_by_key(|r| r.flow);
    rows
}

/// The slowest `top` completed flows of `rows`, FCT-descending (flow id
/// breaks ties, so the order is total and deterministic).
pub fn slowest(rows: &[FlowSpanRow], top: usize) -> Vec<&FlowSpanRow> {
    let mut done: Vec<&FlowSpanRow> = rows.iter().filter(|r| r.fct_ns.is_some()).collect();
    done.sort_by(|a, b| b.fct_ns.cmp(&a.fct_ns).then(a.flow.cmp(&b.flow)));
    done.truncate(top);
    done
}

fn row_json(row: &FlowSpanRow) -> Json {
    let mut j = Json::object();
    j.push("flow", row.flow)
        .push("src", row.src)
        .push("dst", row.dst)
        .push("bytes", row.bytes)
        .push("fct_ns", row.fct_ns)
        .push("born_epoch", row.born)
        .push("request_epoch", row.request)
        .push("grant_epoch", row.grant)
        .push("accept_epoch", row.accept)
        .push("first_tx_epoch", row.first_tx)
        .push("complete_epoch", row.complete);
    j
}

/// The slowest-flows summary document: one entry per engine section with
/// its `top` slowest completed flows and their full milestone history.
/// This is the body of the daemon's `GET /jobs/<id>/flows?top=N` and of
/// `paper trace query --top-fct N --json` — one implementation, two
/// frontends.
pub fn flows_json(text: &str, top: usize) -> Result<Json, String> {
    let trace = parse(text)?;
    let mut sections = Vec::new();
    for section in &trace.sections {
        let rows = flow_rows(section);
        let completed = rows.iter().filter(|r| r.fct_ns.is_some()).count();
        let mut s = Json::object();
        s.push("system", section.system.as_str())
            .push("flows_seen", rows.len() as u64)
            .push("flows_completed", completed as u64)
            .push("dropped_events", section.dropped)
            .push(
                "slowest",
                Json::Arr(slowest(&rows, top).into_iter().map(row_json).collect()),
            );
        sections.push(s);
    }
    let mut out = Json::object();
    out.push("top", top as u64)
        .push("sections", Json::Arr(sections));
    Ok(out)
}

// ---------------------------------------------------------------------
// Query
// ---------------------------------------------------------------------

/// Filters and aggregations for one `paper trace query` invocation.
#[derive(Debug, Clone, Default)]
pub struct QueryOpts {
    /// Keep only events of this kind (`--kind`).
    pub kind: Option<String>,
    /// Keep only events mentioning this ToR (`--tor`).
    pub tor: Option<u64>,
    /// Keep only this flow's lifecycle events (`--flow`).
    pub flow: Option<u64>,
    /// Keep only epochs in this inclusive range (`--epoch A..B`).
    pub epochs: Option<(u64, u64)>,
    /// Also report the slowest-N completed flows (`--top-fct N`).
    pub top_fct: Option<usize>,
    /// Emit the machine-readable document instead of text (`--json`).
    pub json: bool,
}

impl QueryOpts {
    fn keeps(&self, ev: &Ev) -> bool {
        if let Some(kind) = &self.kind {
            if &ev.kind != kind {
                return false;
            }
        }
        if let Some(tor) = self.tor {
            if !ev.mentions_tor(tor) {
                return false;
            }
        }
        if let Some(flow) = self.flow {
            if ev.flow() != Some(flow) {
                return false;
            }
        }
        if let Some((lo, hi)) = self.epochs {
            if ev.epoch < lo || ev.epoch > hi {
                return false;
            }
        }
        true
    }

    fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let Some(k) = &self.kind {
            parts.push(format!("kind={k}"));
        }
        if let Some(t) = self.tor {
            parts.push(format!("tor={t}"));
        }
        if let Some(f) = self.flow {
            parts.push(format!("flow={f}"));
        }
        if let Some((lo, hi)) = self.epochs {
            parts.push(format!("epoch={lo}..{hi}"));
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join(" ")
        }
    }
}

/// Run a query over trace NDJSON and render the answer (text or JSON per
/// `opts.json`). The output is a pure function of (text, opts) — CI pins
/// it over a committed golden trace.
pub fn query(text: &str, opts: &QueryOpts) -> Result<String, String> {
    let trace = parse(text)?;
    if opts.json {
        return Ok(query_json(&trace, opts).render());
    }
    let mut out = String::new();
    out.push_str(&format!(
        "# trace query — {} section(s), filters: {}\n",
        trace.sections.len(),
        opts.describe()
    ));
    for section in &trace.sections {
        let kept: Vec<&Ev> = section.events.iter().filter(|e| opts.keeps(e)).collect();
        out.push_str(&format!(
            "\n## {} — {} of {} events match",
            section.system,
            kept.len(),
            section.events.len()
        ));
        if section.dropped > 0 {
            out.push_str(&format!(" ({} dropped by ring overflow)", section.dropped));
        }
        out.push('\n');
        // Per-epoch event counts over the matching set.
        let by_epoch = epoch_counts(&kept);
        if !by_epoch.is_empty() {
            out.push_str("   per-epoch event counts:\n");
            for &(epoch, count) in by_epoch.iter().take(MAX_EPOCH_ROWS) {
                out.push_str(&format!("     epoch {epoch:>6}: {count}\n"));
            }
            if by_epoch.len() > MAX_EPOCH_ROWS {
                out.push_str(&format!(
                    "     (… {} more epochs elided)\n",
                    by_epoch.len() - MAX_EPOCH_ROWS
                ));
            }
        }
        // A single flow's query prints its full span timeline.
        if opts.flow.is_some() {
            out.push_str("   timeline:\n");
            for ev in kept.iter().take(MAX_TIMELINE_ROWS) {
                out.push_str(&format!("     {}\n", ev.line));
            }
            if kept.len() > MAX_TIMELINE_ROWS {
                out.push_str(&format!(
                    "     (… {} more events elided)\n",
                    kept.len() - MAX_TIMELINE_ROWS
                ));
            }
        }
        if let Some(top) = opts.top_fct {
            let rows = flow_rows(section);
            out.push_str(&format!("   slowest {top} flows by FCT:\n"));
            let slow = slowest(&rows, top);
            if slow.is_empty() {
                out.push_str("     (no completed flows in the trace window)\n");
            } else {
                out.push_str(
                    "     flow   src   dst        bytes       fct_ns  born  req  grant  accept  first_tx  done\n",
                );
                for r in slow {
                    out.push_str(&format!(
                        "     {:>4} {:>5} {:>5} {:>12} {:>12}  {:>4}  {:>3}  {:>5}  {:>6}  {:>8}  {:>4}\n",
                        r.flow,
                        r.src,
                        r.dst,
                        r.bytes,
                        r.fct_ns.unwrap_or(0),
                        opt_col(r.born),
                        opt_col(r.request),
                        opt_col(r.grant),
                        opt_col(r.accept),
                        opt_col(r.first_tx),
                        opt_col(r.complete),
                    ));
                }
            }
        }
    }
    Ok(out)
}

fn opt_col(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |e| e.to_string())
}

/// `(epoch, matching event count)` rows, epoch-ascending.
fn epoch_counts(kept: &[&Ev]) -> Vec<(u64, u64)> {
    let mut counts: Vec<(u64, u64)> = Vec::new();
    for ev in kept {
        match counts.binary_search_by_key(&ev.epoch, |&(e, _)| e) {
            Ok(i) => counts[i].1 += 1,
            Err(i) => counts.insert(i, (ev.epoch, 1)),
        }
    }
    counts
}

fn query_json(trace: &Trace, opts: &QueryOpts) -> Json {
    let mut sections = Vec::new();
    for section in &trace.sections {
        let kept: Vec<&Ev> = section.events.iter().filter(|e| opts.keeps(e)).collect();
        let mut s = Json::object();
        s.push("system", section.system.as_str())
            .push("matched", kept.len() as u64)
            .push("total", section.events.len() as u64)
            .push("dropped_events", section.dropped);
        let mut epochs = Vec::new();
        for (epoch, count) in epoch_counts(&kept) {
            let mut e = Json::object();
            e.push("epoch", epoch).push("events", count);
            epochs.push(e);
        }
        s.push("by_epoch", Json::Arr(epochs));
        if opts.flow.is_some() {
            let lines: Vec<Json> = kept
                .iter()
                .map(|ev| ev.json.clone())
                .take(MAX_TIMELINE_ROWS)
                .collect();
            s.push("timeline", Json::Arr(lines));
        }
        if let Some(top) = opts.top_fct {
            let rows = flow_rows(section);
            s.push(
                "slowest",
                Json::Arr(slowest(&rows, top).into_iter().map(row_json).collect()),
            );
        }
        sections.push(s);
    }
    let mut out = Json::object();
    out.push("filters", opts.describe())
        .push("sections", Json::Arr(sections));
    out
}

// ---------------------------------------------------------------------
// Diff
// ---------------------------------------------------------------------

/// Outcome of a trace diff.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Human-readable report (identical or divergence + context).
    pub report: String,
    /// True when the traces differ — `paper trace diff` exits non-zero.
    pub divergent: bool,
}

/// Locate the first divergent line between two traces and render it with
/// `context` lines of aligned context on each side. Line-exact: the
/// determinism gate's contract is byte identity, so the first differing
/// *line* is the first differing *event*, and naming it (epoch + kind +
/// ToR/flow) is what turns "bytes differ" into a lead.
pub fn diff(a_name: &str, a: &str, b_name: &str, b: &str, context: usize) -> DiffReport {
    let a_lines: Vec<&str> = a.lines().collect();
    let b_lines: Vec<&str> = b.lines().collect();
    let common = a_lines.len().min(b_lines.len());
    let split = (0..common).find(|&i| a_lines[i] != b_lines[i]);
    let at = match split {
        Some(i) => i,
        None if a_lines.len() == b_lines.len() => {
            return DiffReport {
                report: format!(
                    "traces are identical ({} lines)\n  a: {a_name}\n  b: {b_name}\n",
                    a_lines.len()
                ),
                divergent: false,
            };
        }
        // One trace is a strict prefix of the other: the first divergent
        // event is the longer side's next line.
        None => common,
    };
    let mut report = format!("traces diverge at line {} (1-based)\n", at + 1);
    report.push_str(&format!("  a: {a_name}\n  b: {b_name}\n"));
    report.push_str(&format!(
        "  first divergent event: a = {}\n                         b = {}\n",
        describe_line(a_lines.get(at).copied()),
        describe_line(b_lines.get(at).copied()),
    ));
    let from = at.saturating_sub(context);
    if from < at {
        report.push_str(&format!(
            "  aligned context (lines {}..{}, identical on both sides):\n",
            from + 1,
            at
        ));
        for line in &a_lines[from..at] {
            report.push_str(&format!("    = {line}\n"));
        }
    }
    for (name, lines) in [(a_name, &a_lines), (b_name, &b_lines)] {
        report.push_str(&format!("  {name}:\n"));
        if at >= lines.len() {
            report.push_str("    (ends here)\n");
            continue;
        }
        let to = (at + 1 + context).min(lines.len());
        for line in &lines[at..to] {
            report.push_str(&format!("    > {line}\n"));
        }
    }
    DiffReport {
        report,
        divergent: true,
    }
}

/// Name one event line for the divergence headline: epoch + kind + the
/// ToR/flow coordinates it carries.
fn describe_line(line: Option<&str>) -> String {
    let Some(line) = line else {
        return "(end of trace)".to_string();
    };
    let Ok(v) = Json::parse(line) else {
        return format!("(unparseable) {line}");
    };
    let kind = v.get("event").and_then(Json::as_str).unwrap_or("?");
    let mut desc = format!(
        "epoch {} {kind}",
        v.get("epoch").and_then(Json::as_u64).unwrap_or(0)
    );
    for key in ["flow", "tor", "src", "dst"] {
        if let Some(val) = v.get(key).and_then(Json::as_u64) {
            desc.push_str(&format!(" {key}={val}"));
        }
    }
    desc
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"event\":\"trace_start\",\"schema_version\":2,\"system\":\"nego/parallel\",\"capacity\":16384}\n",
        "{\"event\":\"flow_born\",\"epoch\":0,\"t_ns\":0,\"flow\":0,\"src\":1,\"dst\":2,\"bytes\":5000}\n",
        "{\"event\":\"flow_born\",\"epoch\":0,\"t_ns\":0,\"flow\":1,\"src\":2,\"dst\":3,\"bytes\":800}\n",
        "{\"event\":\"sched\",\"epoch\":1,\"t_ns\":5000,\"requests\":2,\"grants\":0,\"accepts\":0}\n",
        "{\"event\":\"flow_request\",\"epoch\":1,\"t_ns\":5000,\"flow\":0,\"src\":1,\"dst\":2}\n",
        "{\"event\":\"flow_grant\",\"epoch\":2,\"t_ns\":10000,\"flow\":0,\"src\":1,\"dst\":2}\n",
        "{\"event\":\"flow_accept\",\"epoch\":3,\"t_ns\":15000,\"flow\":0,\"src\":1,\"dst\":2}\n",
        "{\"event\":\"flow_first_tx\",\"epoch\":3,\"t_ns\":15000,\"flow\":0,\"sent_bytes\":1500}\n",
        "{\"event\":\"flow_complete\",\"epoch\":5,\"t_ns\":25000,\"flow\":0,\"fct_ns\":25000,\"src\":1,\"dst\":2}\n",
        "{\"event\":\"flow_first_tx\",\"epoch\":6,\"t_ns\":30000,\"flow\":1,\"sent_bytes\":800}\n",
        "{\"event\":\"flow_complete\",\"epoch\":6,\"t_ns\":30000,\"flow\":1,\"fct_ns\":30000,\"src\":2,\"dst\":3}\n",
        "{\"event\":\"trace_end\",\"system\":\"nego/parallel\",\"events\":10,\"dropped\":0}\n",
    );

    #[test]
    fn parses_sections_and_sums_drops() {
        let t = parse(SAMPLE).unwrap();
        assert_eq!(t.sections.len(), 1);
        assert_eq!(t.sections[0].events.len(), 10);
        assert_eq!(dropped_total(SAMPLE), 0);
        let overflowed = SAMPLE.replace("\"dropped\":0", "\"dropped\":7");
        assert_eq!(dropped_total(&overflowed), 7);
        assert_eq!(dropped_total("not even json\n"), 0);
    }

    #[test]
    fn flow_rows_reconstruct_timelines_in_id_order() {
        let t = parse(SAMPLE).unwrap();
        let rows = flow_rows(&t.sections[0]);
        assert_eq!(rows.len(), 2);
        let r0 = &rows[0];
        assert_eq!((r0.flow, r0.src, r0.dst, r0.bytes), (0, 1, 2, 5000));
        assert_eq!(r0.born, Some(0));
        assert_eq!(r0.request, Some(1));
        assert_eq!(r0.grant, Some(2));
        assert_eq!(r0.accept, Some(3));
        assert_eq!(r0.first_tx, Some(3));
        assert_eq!(r0.complete, Some(5));
        assert_eq!(r0.fct_ns, Some(25000));
        let r1 = &rows[1];
        assert_eq!(r1.flow, 1);
        assert_eq!(r1.request, None, "flow 1 never saw a covering REQUEST");
    }

    #[test]
    fn slowest_orders_by_fct_then_id() {
        let t = parse(SAMPLE).unwrap();
        let rows = flow_rows(&t.sections[0]);
        let slow = slowest(&rows, 5);
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].flow, 1, "30 µs beats 25 µs");
        assert_eq!(slow[1].flow, 0);
        assert_eq!(slowest(&rows, 1).len(), 1);
    }

    #[test]
    fn flows_json_is_the_shared_endpoint_document() {
        let doc = flows_json(SAMPLE, 1).unwrap();
        assert_eq!(doc.get("top").and_then(Json::as_u64), Some(1));
        let sections = doc.get("sections").unwrap().as_array().unwrap();
        assert_eq!(sections.len(), 1);
        let s = &sections[0];
        assert_eq!(s.get("flows_seen").and_then(Json::as_u64), Some(2));
        assert_eq!(s.get("flows_completed").and_then(Json::as_u64), Some(2));
        let slow = s.get("slowest").unwrap().as_array().unwrap();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].get("flow").and_then(Json::as_u64), Some(1));
        assert_eq!(slow[0].get("fct_ns").and_then(Json::as_u64), Some(30000));
        // Round-trips through the parser.
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn query_filters_compose() {
        let q = |opts: QueryOpts| query(SAMPLE, &opts).unwrap();
        let out = q(QueryOpts {
            kind: Some("flow_born".to_string()),
            ..QueryOpts::default()
        });
        assert!(out.contains("2 of 10 events match"), "{out}");
        let out = q(QueryOpts {
            flow: Some(0),
            ..QueryOpts::default()
        });
        assert!(out.contains("6 of 10 events match"), "{out}");
        assert!(out.contains("timeline:"), "{out}");
        assert!(out.contains("flow_grant"), "{out}");
        let out = q(QueryOpts {
            tor: Some(3),
            ..QueryOpts::default()
        });
        assert!(out.contains("2 of 10 events match"), "{out}");
        let out = q(QueryOpts {
            epochs: Some((1, 2)),
            ..QueryOpts::default()
        });
        assert!(out.contains("3 of 10 events match"), "{out}");
        let out = q(QueryOpts {
            top_fct: Some(2),
            ..QueryOpts::default()
        });
        assert!(out.contains("slowest 2 flows"), "{out}");
    }

    #[test]
    fn query_json_round_trips() {
        let out = query(
            SAMPLE,
            &QueryOpts {
                top_fct: Some(1),
                json: true,
                ..QueryOpts::default()
            },
        )
        .unwrap();
        let doc = Json::parse(&out).unwrap();
        let sections = doc.get("sections").unwrap().as_array().unwrap();
        let slow = sections[0].get("slowest").unwrap().as_array().unwrap();
        assert_eq!(slow[0].get("flow").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn query_is_deterministic() {
        let opts = QueryOpts {
            top_fct: Some(3),
            ..QueryOpts::default()
        };
        assert_eq!(query(SAMPLE, &opts).unwrap(), query(SAMPLE, &opts).unwrap());
    }

    #[test]
    fn diff_identical_is_clean() {
        let d = diff("a", SAMPLE, "b", SAMPLE, 3);
        assert!(!d.divergent);
        assert!(d.report.contains("identical"), "{}", d.report);
    }

    #[test]
    fn diff_names_the_first_divergent_event() {
        let b = SAMPLE.replace(
            "{\"event\":\"flow_grant\",\"epoch\":2,\"t_ns\":10000,\"flow\":0,\"src\":1,\"dst\":2}",
            "{\"event\":\"flow_grant\",\"epoch\":3,\"t_ns\":15000,\"flow\":0,\"src\":1,\"dst\":2}",
        );
        let d = diff("a.ndjson", SAMPLE, "b.ndjson", &b, 2);
        assert!(d.divergent);
        assert!(d.report.contains("diverge at line 6"), "{}", d.report);
        assert!(
            d.report
                .contains("a = epoch 2 flow_grant flow=0 src=1 dst=2"),
            "{}",
            d.report
        );
        assert!(
            d.report
                .contains("b = epoch 3 flow_grant flow=0 src=1 dst=2"),
            "{}",
            d.report
        );
        assert!(d.report.contains("aligned context"), "{}", d.report);
        assert!(d.report.contains("flow_request"), "{}", d.report);
    }

    #[test]
    fn diff_handles_prefix_truncation() {
        let truncated: String = SAMPLE.lines().take(4).map(|l| format!("{l}\n")).collect();
        let d = diff("full", SAMPLE, "short", &truncated, 1);
        assert!(d.divergent);
        assert!(d.report.contains("(end of trace)"), "{}", d.report);
        assert!(d.report.contains("(ends here)"), "{}", d.report);
    }
}
