//! Shared experiment-run helpers: build a simulator, play a workload,
//! return the paper's metrics. Used by the `paper` binary, the criterion
//! benches, and calibration tests.

use metrics::RunReport;
use negotiator::{NegotiatorConfig, NegotiatorSim, SimOptions};
use oblivious::{ObliviousConfig, ObliviousSim};
use sim::time::Nanos;
use topology::{NetworkConfig, TopologyKind};
use workload::{FlowSizeDist, FlowTrace, PoissonWorkload, WorkloadSpec};

/// Default simulated duration of harness runs (paper: 30 ms; 5 ms keeps
/// the full suite to minutes while leaving percentiles stable).
pub const DEFAULT_DURATION: Nanos = 5_000_000;

/// Default workload seed.
pub const SEED: u64 = 20240804; // SIGCOMM'24 week

/// Build the paper's Poisson background trace at `load` over `net`.
pub fn background(
    dist: FlowSizeDist,
    load: f64,
    net: &NetworkConfig,
    duration: Nanos,
) -> FlowTrace {
    background_seeded(dist, load, net, duration, SEED)
}

/// [`background`] with an explicit workload seed (the harness's `--seed`).
pub fn background_seeded(
    dist: FlowSizeDist,
    load: f64,
    net: &NetworkConfig,
    duration: Nanos,
    seed: u64,
) -> FlowTrace {
    PoissonWorkload::new(WorkloadSpec {
        dist,
        load,
        n_tors: net.n_tors,
        host_bps: net.host_bandwidth.bps(),
    })
    .generate(duration, seed)
}

/// One NegotiaToR run: returns the report and the sim (for extra metrics).
///
/// `workers` is the intra-run shard worker count (`--workers`); reports
/// are byte-identical at any value, so it is purely a wall-clock knob.
pub fn run_negotiator(
    cfg: NegotiatorConfig,
    kind: TopologyKind,
    mut opts: SimOptions,
    trace: &FlowTrace,
    duration: Nanos,
    workers: usize,
) -> (RunReport, NegotiatorSim) {
    opts.workers = workers.max(1);
    let mut sim = NegotiatorSim::with_options(cfg, kind, opts);
    let report = sim.run(trace, duration);
    (report, sim)
}

/// One traffic-oblivious run. `workers` as in [`run_negotiator`].
pub fn run_oblivious(
    cfg: ObliviousConfig,
    kind: TopologyKind,
    trace: &FlowTrace,
    duration: Nanos,
    workers: usize,
) -> (RunReport, ObliviousSim) {
    let mut sim = ObliviousSim::new(cfg, kind);
    sim.set_workers(workers);
    let report = sim.run(trace, duration);
    (report, sim)
}
