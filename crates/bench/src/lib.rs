//! Experiment harness regenerating every table and figure of the
//! NegotiaToR paper's evaluation (§4 and Appendix A).
//!
//! Run one experiment:
//!
//! ```text
//! cargo run --release -p service --bin paper -- fig9
//! cargo run --release -p service --bin paper -- all --jobs 8 --json --out results/
//! ```
//!
//! Each experiment prints the same rows/series the paper reports, as
//! aligned text tables; `--json` additionally writes one machine-readable
//! `results/<id>.json` per experiment (see [`results`] for the schema and
//! the `bench-diff` binary for the CI regression gate). The sweep layer
//! ([`sweep`]) expands every experiment into independent runs and executes
//! them across `--jobs N` worker threads, reassembling outputs in spec
//! order so parallel reports are byte-identical to serial ones.
//!
//! DESIGN.md carries the per-experiment index mapping every id to its
//! paper artifact, workload and modules; EXPERIMENTS.md records
//! paper-vs-measured comparisons.

pub mod cache;
pub mod cli;
pub mod experiments;
pub mod profile;
pub mod results;
pub mod runs;
pub mod scenario;
pub mod sweep;
pub mod tracecmd;
pub mod traceq;

pub use experiments::{find_experiment, run_experiment, Args, Experiment, EXPERIMENTS};
