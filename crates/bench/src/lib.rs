//! Experiment harness regenerating every table and figure of the
//! NegotiaToR paper's evaluation (§4 and Appendix A).
//!
//! Run one experiment:
//!
//! ```text
//! cargo run --release -p bench --bin paper -- fig9
//! cargo run --release -p bench --bin paper -- all --duration-ms 5
//! ```
//!
//! Each experiment prints the same rows/series the paper reports, as
//! aligned text tables. DESIGN.md carries the per-experiment index mapping
//! every id to its paper artifact, workload and modules; EXPERIMENTS.md
//! records paper-vs-measured comparisons.

pub mod experiments;
pub mod runs;

pub use experiments::{run_experiment, Args, EXPERIMENTS};
