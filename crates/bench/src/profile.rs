//! Wall-clock stage profiling for the harness side.
//!
//! The engines are deterministic zones where wall-clock reads are banned
//! (lint D002), so profiling lives here: the harness wraps each pipeline
//! stage — scenario compile, engine execution (which internally covers
//! shard fan-out and merge), report rendering, cache traffic — in a
//! [`StageTimer`] and accumulates per-stage call counts and elapsed
//! nanoseconds into process-wide atomics. The daemon's `GET /metrics`
//! exports the totals as `paper_stage_seconds_total{stage=...}` /
//! `paper_stage_calls_total{stage=...}`; nothing here ever feeds result
//! documents, so determinism is untouched.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A profiled pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Scenario parse + compile (`scenario::compile`).
    Compile,
    /// One engine simulation, including its shard fan-out and merge.
    Execute,
    /// Report assembly and JSON rendering.
    Render,
    /// Result-cache lookup (hit or miss).
    CacheLookup,
    /// Result-cache store (temp write + rename).
    CacheStore,
}

const STAGES: [Stage; 5] = [
    Stage::Compile,
    Stage::Execute,
    Stage::Render,
    Stage::CacheLookup,
    Stage::CacheStore,
];

impl Stage {
    /// The `stage` label value on exported metrics.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Compile => "compile",
            Stage::Execute => "execute",
            Stage::Render => "render",
            Stage::CacheLookup => "cache_lookup",
            Stage::CacheStore => "cache_store",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Compile => 0,
            Stage::Execute => 1,
            Stage::Render => 2,
            Stage::CacheLookup => 3,
            Stage::CacheStore => 4,
        }
    }
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static CALLS: [AtomicU64; 5] = [ZERO; 5];
static NANOS: [AtomicU64; 5] = [ZERO; 5];

/// Start timing one `stage` call. Stop it with [`StageTimer::stop`]; a
/// timer dropped without `stop` records nothing.
pub fn start(stage: Stage) -> StageTimer {
    StageTimer {
        stage,
        started: Instant::now(),
    }
}

/// A running stage timer (see [`start`]).
#[derive(Debug)]
pub struct StageTimer {
    stage: Stage,
    started: Instant,
}

impl StageTimer {
    /// Stop the timer, fold the elapsed time into the process-wide
    /// totals, and return it in seconds (callers reuse it for per-run
    /// wall-time reporting).
    pub fn stop(self) -> f64 {
        let elapsed = self.started.elapsed();
        let i = self.stage.index();
        CALLS[i].fetch_add(1, Ordering::Relaxed);
        NANOS[i].fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        elapsed.as_secs_f64()
    }
}

/// Cumulative totals of one stage since process start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageTotals {
    /// Metric label of the stage.
    pub stage: &'static str,
    /// Completed calls.
    pub calls: u64,
    /// Total elapsed seconds across those calls.
    pub seconds: f64,
}

/// Snapshot every stage's totals, in a fixed order.
pub fn snapshot() -> Vec<StageTotals> {
    STAGES
        .iter()
        .map(|&s| {
            let i = s.index();
            StageTotals {
                stage: s.label(),
                calls: CALLS[i].load(Ordering::Relaxed),
                seconds: NANOS[i].load(Ordering::Relaxed) as f64 / 1e9,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_accumulates_calls_and_time() {
        let before = snapshot();
        let t = start(Stage::Render);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let secs = t.stop();
        assert!(secs > 0.0);
        let after = snapshot();
        let b = before.iter().find(|s| s.stage == "render").unwrap();
        let a = after.iter().find(|s| s.stage == "render").unwrap();
        assert_eq!(a.calls, b.calls + 1);
        assert!(a.seconds > b.seconds);
    }

    #[test]
    fn dropped_timer_records_nothing() {
        let before = snapshot();
        let _ = start(Stage::Compile);
        let after = snapshot();
        let b = before.iter().find(|s| s.stage == "compile").unwrap();
        let a = after.iter().find(|s| s.stage == "compile").unwrap();
        assert_eq!(a.calls, b.calls);
    }

    #[test]
    fn snapshot_covers_every_stage_once() {
        let snap = snapshot();
        let labels: Vec<&str> = snap.iter().map(|s| s.stage).collect();
        assert_eq!(
            labels,
            vec![
                "compile",
                "execute",
                "render",
                "cache_lookup",
                "cache_store"
            ]
        );
    }
}
