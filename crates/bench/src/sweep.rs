//! The parallel sweep engine.
//!
//! Every experiment decomposes into independent, deterministic simulation
//! runs: [`crate::experiments::Experiment::specs`] expands the harness
//! [`Args`] into a flat list of [`RunSpec`]s, [`execute_specs`] plays them
//! across `--jobs N` worker threads (via [`sim::pool`]), and the results
//! come back **in spec order**, so the experiment's
//! [`render`](crate::experiments::Experiment::render) produces bytes
//! identical to a serial run. [`run_sweep`] goes one step further and
//! flattens *several* experiments into one shared worker pool, which is
//! what turns `paper all` from hours of serial sweeps into minutes.

use crate::experiments::{Args, Experiment};
use metrics::RunReport;
use sim::pool;
use sim::time::Nanos;

/// Identity of one schedulable run: which experiment it belongs to, where
/// it sits in that experiment's spec order, and the (config, seed) pair
/// that makes it citable and machine-readable.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeta {
    /// Experiment id (`fig9`, `table2`, ...).
    pub experiment: &'static str,
    /// Position in the experiment's spec order (render relies on it).
    pub index: usize,
    /// System / variant label for this run (e.g. `nego/parallel`).
    pub system: String,
    /// Offered load as a fraction, for load sweeps.
    pub load: Option<f64>,
    /// The experiment's own sweep parameter (name, value) — incast
    /// degree, reconfiguration delay, failure ratio, ...
    pub param: Option<(&'static str, f64)>,
    /// Workload seed of the run.
    pub seed: u64,
    /// Simulated horizon of the run in ns.
    pub duration: Nanos,
}

impl RunMeta {
    /// Meta for run `index` of `experiment`, inheriting seed and duration
    /// from `args`.
    pub fn new(
        experiment: &'static str,
        index: usize,
        system: impl Into<String>,
        args: &Args,
    ) -> Self {
        RunMeta {
            experiment,
            index,
            system: system.into(),
            load: None,
            param: None,
            seed: args.seed,
            duration: args.duration,
        }
    }

    /// Set the offered load.
    pub fn load(mut self, load: f64) -> Self {
        self.load = Some(load);
        self
    }

    /// Set the experiment-specific sweep parameter.
    pub fn param(mut self, name: &'static str, value: f64) -> Self {
        self.param = Some((name, value));
        self
    }

    /// Override the simulated horizon (fixed-horizon experiments).
    pub fn duration(mut self, duration: Nanos) -> Self {
        self.duration = duration;
        self
    }

    /// Override the workload seed (experiments pinned to the default
    /// harness seed rather than `--seed`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// What a run contributes to its experiment's rendered report.
#[derive(Debug, Clone, PartialEq)]
pub enum Rendered {
    /// Cell strings for one slice of a table row (row-per-parameter
    /// experiments).
    Cells(Vec<String>),
    /// A fully rendered block (CDF/time-series experiments where one run
    /// emits a whole sub-table).
    Block(String),
}

/// Everything one run measured: its rendered contribution plus the
/// machine-readable scalars the JSON emit and `bench-diff` gate on.
///
/// Only the scalar [`RunSummary`] digest of a run's report is kept — a
/// full [`RunReport`] holds one FCT sample per flow, and a sweep retains
/// hundreds of run metrics until its reports are rendered.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Contribution to the experiment's text report.
    pub rendered: Rendered,
    /// Digest of the run's flow/goodput report, when it produced one.
    pub report: Option<metrics::RunSummary>,
    /// Overall per-epoch match ratio, when recorded.
    pub match_ratio: Option<f64>,
    /// Experiment-specific named scalars (finish times, failure ratios,
    /// over-scheduling counters, ...).
    pub extra: Vec<(&'static str, f64)>,
    /// Per-phase time series (scenario runs): a JSON array emitted under
    /// `metrics.series` in the results schema, gated element-wise by
    /// `bench-diff` like every other metric.
    pub series: Option<metrics::Json>,
}

impl RunMetrics {
    /// Metrics with no standard report (series/burst experiments).
    pub fn new(rendered: Rendered) -> Self {
        RunMetrics {
            rendered,
            report: None,
            match_ratio: None,
            extra: Vec::new(),
            series: None,
        }
    }

    /// Metrics condensed from a full [`RunReport`].
    pub fn with_report(rendered: Rendered, mut report: RunReport) -> Self {
        RunMetrics {
            rendered,
            report: Some(report.summary()),
            match_ratio: None,
            extra: Vec::new(),
            series: None,
        }
    }

    /// Attach a per-phase time series.
    pub fn with_series(mut self, series: metrics::Json) -> Self {
        self.series = Some(series);
        self
    }

    /// Attach a named scalar.
    pub fn push_extra(mut self, name: &'static str, value: f64) -> Self {
        self.extra.push((name, value));
        self
    }

    /// Attach the overall match ratio.
    pub fn with_match_ratio(mut self, ratio: Option<f64>) -> Self {
        self.match_ratio = ratio;
        self
    }
}

/// One schedulable unit of work: metadata plus the closure that runs the
/// simulation. The closure owns (or `Arc`-shares) everything it needs, so
/// specs can execute on any worker thread in any order.
pub struct RunSpec {
    /// Identity of the run.
    pub meta: RunMeta,
    run: Box<dyn FnOnce() -> RunMetrics + Send>,
}

impl RunSpec {
    /// A spec from its metadata and run closure.
    pub fn new(meta: RunMeta, run: impl FnOnce() -> RunMetrics + Send + 'static) -> Self {
        RunSpec {
            meta,
            run: Box::new(run),
        }
    }
}

impl std::fmt::Debug for RunSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunSpec").field("meta", &self.meta).finish()
    }
}

/// A completed run: the spec's metadata, what it measured, and how long
/// the simulation took on the wall.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Identity of the run.
    pub meta: RunMeta,
    /// What the run measured.
    pub metrics: RunMetrics,
    /// Wall-clock cost of this run in seconds (execution metadata — never
    /// part of determinism comparisons).
    pub wall_secs: f64,
}

impl RunResult {
    /// The run's table cells. Panics if the run rendered a block — that
    /// is a mismatch between an experiment's specs and its render.
    pub fn cells(&self) -> &[String] {
        match &self.metrics.rendered {
            Rendered::Cells(cells) => cells,
            Rendered::Block(_) => panic!(
                "{} run {} rendered a block where cells were expected",
                self.meta.experiment, self.meta.index
            ),
        }
    }

    /// The run's rendered block. Panics on cell runs (see [`Self::cells`]).
    pub fn block(&self) -> &str {
        match &self.metrics.rendered {
            Rendered::Block(block) => block,
            Rendered::Cells(_) => panic!(
                "{} run {} rendered cells where a block was expected",
                self.meta.experiment, self.meta.index
            ),
        }
    }

    /// The offered load; panics when the experiment has no load axis.
    pub fn load(&self) -> f64 {
        self.meta.load.expect("run has a load axis")
    }

    /// The sweep-parameter value; panics when the experiment has none.
    pub fn param(&self) -> f64 {
        self.meta.param.expect("run has a sweep parameter").1
    }
}

/// Execute specs across `jobs` workers, returning results in spec order.
pub fn execute_specs(specs: Vec<RunSpec>, jobs: usize) -> Vec<RunResult> {
    let (metas, runs): (Vec<_>, Vec<_>) = specs.into_iter().map(|s| (s.meta, s.run)).unzip();
    let tasks: Vec<pool::Task<(RunMetrics, f64)>> = runs
        .into_iter()
        .map(|run| -> pool::Task<(RunMetrics, f64)> {
            Box::new(move || {
                let started = std::time::Instant::now();
                let metrics = run();
                (metrics, started.elapsed().as_secs_f64())
            })
        })
        .collect();
    let outputs = pool::run_ordered(jobs, tasks);
    metas
        .into_iter()
        .zip(outputs)
        .map(|(meta, (metrics, wall_secs))| RunResult {
            meta,
            metrics,
            wall_secs,
        })
        .collect()
}

/// One experiment's completed sweep: the ordered results and the rendered
/// text report.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Experiment id.
    pub id: &'static str,
    /// Paper artifact description.
    pub artifact: &'static str,
    /// The harness parameters the sweep ran with.
    pub args: Args,
    /// Results in spec order.
    pub results: Vec<RunResult>,
    /// The experiment's text report (same bytes at any `--jobs`).
    pub rendered: String,
}

impl SweepReport {
    /// Total wall-clock spent inside this experiment's runs, in seconds
    /// (sum over runs — parallel sweeps overlap them).
    pub fn runs_wall_secs(&self) -> f64 {
        self.results.iter().map(|r| r.wall_secs).sum()
    }
}

/// Expand `experiments` into one flat spec list, execute it on a shared
/// `jobs`-wide pool, and reassemble per-experiment reports in order.
///
/// The flat pool is the point: a slow experiment no longer serializes the
/// ones queued behind it, and small experiments fill the stragglers' idle
/// workers.
pub fn run_sweep(
    experiments: &[&'static dyn Experiment],
    args: &Args,
    jobs: usize,
) -> Vec<SweepReport> {
    let mut counts = Vec::with_capacity(experiments.len());
    let mut flat = Vec::new();
    for exp in experiments {
        let specs = exp.specs(args);
        counts.push(specs.len());
        flat.extend(specs);
    }
    let mut rest = execute_specs(flat, jobs);
    let mut reports = Vec::with_capacity(experiments.len());
    for (exp, count) in experiments.iter().zip(counts) {
        let tail = rest.split_off(count);
        let results = std::mem::replace(&mut rest, tail);
        let rendered = exp.render(&results);
        reports.push(SweepReport {
            id: exp.id(),
            artifact: exp.artifact(),
            args: args.clone(),
            results,
            rendered,
        });
    }
    reports
}

/// [`run_sweep`] for a single experiment.
pub fn run_one(exp: &'static dyn Experiment, args: &Args, jobs: usize) -> SweepReport {
    run_sweep(&[exp], args, jobs)
        .pop()
        .expect("one experiment in, one report out")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(i: usize, v: f64) -> RunSpec {
        let args = Args::default();
        RunSpec::new(RunMeta::new("test", i, "sys", &args), move || {
            RunMetrics::new(Rendered::Cells(vec![format!("{v}")])).push_extra("v", v)
        })
    }

    #[test]
    fn execute_preserves_spec_order() {
        for jobs in [1, 4] {
            let specs: Vec<RunSpec> = (0..10).map(|i| spec(i, i as f64 * 1.5)).collect();
            let results = execute_specs(specs, jobs);
            for (i, r) in results.iter().enumerate() {
                assert_eq!(r.meta.index, i);
                assert_eq!(r.metrics.extra, vec![("v", i as f64 * 1.5)]);
                assert_eq!(r.cells(), [format!("{}", i as f64 * 1.5)]);
            }
        }
    }

    #[test]
    fn meta_builder() {
        let args = Args::default();
        let m = RunMeta::new("fig8", 3, "nego/parallel", &args)
            .load(0.5)
            .param("reconf_ns", 20.0)
            .duration(123)
            .seed(9);
        assert_eq!(m.load, Some(0.5));
        assert_eq!(m.param, Some(("reconf_ns", 20.0)));
        assert_eq!(m.duration, 123);
        assert_eq!(m.seed, 9);
    }

    #[test]
    #[should_panic(expected = "rendered a block")]
    fn cells_on_block_is_a_bug() {
        let args = Args::default();
        let r = RunResult {
            meta: RunMeta::new("x", 0, "s", &args),
            metrics: RunMetrics::new(Rendered::Block("b".into())),
            wall_secs: 0.0,
        };
        r.cells();
    }
}
