//! Fixture-driven rule tests plus the workspace self-scan gate.
//!
//! The fixtures under `tests/fixtures/` are known-bad snippets that are
//! never compiled (the directory is excluded from the scan policy too);
//! each test scans one and asserts the exact rule id and line:column of
//! every expected finding, so a lexer or rule regression cannot hide
//! behind "roughly the right count".

use lint::{render_json, render_text, rules, scan_workspace, Rule, RuleSet};
use std::path::Path;

const ALL: RuleSet = RuleSet {
    d001: true,
    d002: true,
    d003: true,
};

fn scan_fixture(name: &str) -> (String, Vec<rules::Finding>) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
    let findings = rules::scan_source(name, &src, ALL);
    (src, findings)
}

fn ids(findings: &[rules::Finding]) -> Vec<(&'static str, usize, usize)> {
    findings
        .iter()
        .map(|f| (f.rule.id(), f.line, f.column))
        .collect()
}

#[test]
fn d001_fixture_exact_positions() {
    let (_, f) = scan_fixture("d001_unordered.rs");
    // Line 3 `use ... HashMap`, line 5 `&HashMap<...>`; the string on
    // line 6 and the justified allow on line 11/12 produce nothing.
    assert_eq!(ids(&f), vec![("D001", 3, 23), ("D001", 5, 19)]);
}

#[test]
fn d002_fixture_exact_positions() {
    let (_, f) = scan_fixture("d002_wall_clock.rs");
    // The `use` and the stored Option<Instant> are not reads; only
    // `Instant::now()` and the `SystemTime` touch fire.
    assert_eq!(ids(&f), vec![("D002", 6, 14), ("D002", 7, 28)]);
}

#[test]
fn d003_fixture_exact_positions() {
    let (_, f) = scan_fixture("d003_threading.rs");
    // `thread::sleep` is allowed; `thread::spawn` and `mpsc` are not.
    assert_eq!(ids(&f), vec![("D003", 4, 26), ("D003", 5, 31)]);
}

#[test]
fn d004_fixture_exact_positions() {
    let (_, f) = scan_fixture("d004_randomness.rs");
    assert_eq!(
        ids(&f),
        vec![("D004", 2, 33), ("D004", 5, 46), ("D004", 6, 15)]
    );
}

#[test]
fn h001_fixture_exact_positions() {
    let (_, f) = scan_fixture("h001_hot_alloc.rs");
    // Only the annotated region fires; the trailing allow excuses the
    // last push; code before and after the region is free to allocate.
    assert_eq!(
        ids(&f),
        vec![
            ("H001", 8, 7),   // v.push(1)
            ("H001", 9, 15),  // x.clone()
            ("H001", 10, 13), // format!
            ("H001", 11, 15), // x.to_string()
            ("H001", 12, 13), // Box::new
            ("H001", 13, 22), // Vec::new (the `Vec<u8>` type is not a call)
        ]
    );
    assert!(f.iter().all(|x| x.rule == Rule::H001));
}

#[test]
fn suppression_fixture_hygiene() {
    let (_, f) = scan_fixture("suppressions.rs");
    // Bare allow (3), unknown rule (5), stale allow (6), unknown
    // directive (8). Both HashMap lines are suppressed — the bare allow
    // still works, it just costs an S001.
    assert_eq!(
        ids(&f),
        vec![
            ("S001", 3, 5),
            ("S001", 5, 5),
            ("S001", 6, 5),
            ("S001", 8, 5),
        ]
    );
    assert!(
        f[0].message.contains("no justification"),
        "{}",
        f[0].message
    );
    assert!(
        f[1].message.contains("no suppressible rule"),
        "{}",
        f[1].message
    );
    assert!(f[2].message.contains("stale"), "{}", f[2].message);
    assert!(
        f[3].message.contains("unknown lint directive"),
        "{}",
        f[3].message
    );
}

/// The D003 zone extension is a property of the *path*, not the source:
/// the identical threading snippet is clean when it lives at
/// `crates/sim/src/shard.rs` (or `pool.rs`) and two findings anywhere
/// else in the engine zone.
#[test]
fn d003_shard_zone_fixture_is_path_gated() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join("d003_shard_zone.rs");
    let src = std::fs::read_to_string(&path).expect("d003_shard_zone.rs");
    for exempt in ["crates/sim/src/shard.rs", "crates/sim/src/pool.rs"] {
        let f = lint::scan_file(exempt, &src);
        assert!(f.is_empty(), "{exempt} should be exempt, got {f:?}");
    }
    let f = lint::scan_file("crates/sim/src/lib.rs", &src);
    assert_eq!(
        ids(&f),
        vec![("D003", 6, 31), ("D003", 7, 31)],
        "same bytes outside the shard engine must fire"
    );
}

/// The fault-injection module is engine surface: scanned under its real
/// path, unordered containers (D001) and ambient RNG (D004) both fire —
/// a flap table in a `HashMap` or a gray-drop decision from `thread_rng`
/// would silently break byte-identity, and the linter is the backstop.
#[test]
fn inject_module_is_lint_gated_as_engine_code() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join("inject_zone.rs");
    let src = std::fs::read_to_string(&path).expect("inject_zone.rs");
    let f = lint::scan_file("crates/topology/src/inject.rs", &src);
    let rule_ids: Vec<&str> = f.iter().map(|x| x.rule.id()).collect();
    assert!(rule_ids.contains(&"D001"), "HashMap must fire D001: {f:?}");
    assert!(
        rule_ids.contains(&"D004"),
        "ambient RNG must fire D004: {f:?}"
    );
    // The same bytes in an infra crate relax D001 (harness code may use
    // maps) but still reject ambient randomness.
    let f = lint::scan_file("crates/bench/src/inject_zone.rs", &src);
    let rule_ids: Vec<&str> = f.iter().map(|x| x.rule.id()).collect();
    assert!(
        !rule_ids.contains(&"D001"),
        "infra zone relaxes D001: {f:?}"
    );
    assert!(rule_ids.contains(&"D004"), "D004 applies everywhere: {f:?}");
}

/// Suppression hygiene on the real tree: every `lint: allow` directive in
/// the scanned workspace names a known rule AND carries a justification.
/// (The self-scan gate below already catches bare allows as S001 — this
/// asserts the stronger invariant directly, with the offending lines in
/// the failure message.)
#[test]
fn workspace_allows_all_carry_justifications() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = scan_workspace(&root).expect("workspace scan");
    let mut offenders = Vec::new();
    let mut seen_allows = 0usize;
    for rel in &report.files {
        // The lint crate itself documents and unit-tests the directive
        // syntax (placeholder `RULE`, deliberately-bad `D999` strings);
        // the hygiene claim is about the *consumers* of the directive.
        if rel.starts_with("crates/lint/") {
            continue;
        }
        let src = std::fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("{rel}: {e}"));
        for (i, line) in src.lines().enumerate() {
            let Some(at) = line.find("lint: allow(") else {
                continue;
            };
            seen_allows += 1;
            let rest = &line[at + "lint: allow(".len()..];
            let Some((id, justification)) = rest.split_once(')') else {
                offenders.push(format!("{rel}:{} — unclosed allow", i + 1));
                continue;
            };
            if Rule::from_id(id.trim()).is_none() {
                offenders.push(format!("{rel}:{} — unknown rule `{id}`", i + 1));
            }
            if justification.trim().is_empty() {
                offenders.push(format!("{rel}:{} — no justification", i + 1));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "bare allows:\n{}",
        offenders.join("\n")
    );
    assert!(
        seen_allows >= 5,
        "suspiciously few allows found ({seen_allows}) — did the directive syntax change?"
    );
}

#[test]
fn every_rule_has_a_distinct_hint() {
    let rules = [
        Rule::D001,
        Rule::D002,
        Rule::D003,
        Rule::D004,
        Rule::H001,
        Rule::S001,
    ];
    for (i, a) in rules.iter().enumerate() {
        assert!(!a.hint().is_empty());
        for b in &rules[i + 1..] {
            assert_ne!(a.hint(), b.hint());
            assert_ne!(a.id(), b.id());
        }
    }
}

/// The gate CI leans on: the workspace itself scans clean — zero
/// unsuppressed findings — and the scan is deterministic (two passes
/// render byte-identical reports).
#[test]
fn workspace_self_scan_is_clean_and_deterministic() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = scan_workspace(&root).expect("workspace scan");
    assert!(
        report.findings.is_empty(),
        "unsuppressed findings:\n{}",
        render_text(&report)
    );
    assert!(
        report.files.len() > 50,
        "suspiciously few files scanned: {}",
        report.files.len()
    );
    // Spot-check coverage: the engine hot paths and the daemon are in.
    for expected in [
        "crates/negotiator/src/sim.rs",
        "crates/oblivious/src/sim.rs",
        "crates/service/src/server.rs",
        "crates/lint/src/lib.rs",
        "tests/golden_report.rs",
    ] {
        assert!(
            report.files.iter().any(|f| f == expected),
            "{expected} missing from the scan"
        );
    }
    // Fixtures and vendored stand-ins must NOT be in.
    assert!(
        report
            .files
            .iter()
            .all(|f| !f.contains("/fixtures/") && !f.starts_with("vendor/")),
        "policy exclusions leaked into the scan"
    );
    let again = scan_workspace(&root).expect("second scan");
    assert_eq!(render_text(&report), render_text(&again));
    assert_eq!(render_json(&report).render(), render_json(&again).render());
}
