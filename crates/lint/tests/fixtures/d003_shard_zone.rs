// Fixture: the D003 zone extension. This snippet is scanned twice under
// different paths — as `crates/sim/src/shard.rs` (the sharded epoch
// engine, where threading IS the point) it must come back clean; as any
// other engine file the same bytes are two D003 findings.
fn shard_workers() {
    let handle = std::thread::spawn(worker);
    let (tx, rx) = std::sync::mpsc::channel();
    handle.join().unwrap();
}
