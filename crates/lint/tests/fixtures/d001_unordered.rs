// Fixture: D001 unordered iteration. Never compiled — scanned by
// tests/lint_rules.rs, which asserts exact rule ids and positions.
use std::collections::HashMap;

fn order_leak(m: &HashMap<u32, u32>) -> Vec<u32> {
    let s = "HashMap in a string is fine";
    m.keys().copied().collect()
}

fn excused() {
    // lint: allow(D001) bounded to 2 keys, order never observed
    let _m: std::collections::HashSet<u8> = Default::default();
}
