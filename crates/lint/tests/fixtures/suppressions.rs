// Fixture: suppression hygiene (S001).
fn hygiene() {
    // lint: allow(D001)
    let bare = std::collections::HashMap::<u8, u8>::new();
    // lint: allow(D999) not a rule id
    // lint: allow(D002) excuses nothing on the next line
    let stale = 0;
    // lint: frobnicate
    let unknown = 0;
    // lint: allow(D001) justified and used — no finding from this pair
    let fine = std::collections::HashMap::<u8, u8>::new();
}
