// Fixture: H001 allocation in a hot-path region.
fn cold(v: &mut Vec<u32>) {
    v.push(1); // outside any hot region: no finding
}

// lint: hot-path
fn epoch_step(v: &mut Vec<u32>, x: &String) {
    v.push(1);
    let c = x.clone();
    let s = format!("{c}");
    let t = x.to_string();
    let b = Box::new(0u8);
    let w: Vec<u8> = Vec::new();
    // lint: allow(H001) scratch buffer reuses capacity across epochs
    v.push(2);
}

fn cold_again() {
    let v: Vec<u8> = Vec::new(); // region ended at the closing brace
}
