//! Lint fixture: a flight-recorder-shaped snippet. Scanned under the
//! recorder's real engine-zone path, the wall-clock read must fire D002
//! and the unjustified hot-path push must fire H001; the same bytes
//! under a bench/service profiling-hook path relax D002 (H001 is
//! annotation-driven and applies in every zone).

pub fn record(events: &mut Vec<u64>, ev: u64) {
    let stamp = std::time::Instant::now();
    // lint: hot-path
    {
        events.push(ev);
    }
    let _ = stamp;
}
