// Fixture: D002 wall clock in deterministic code.
use std::time::Instant;

fn timing() {
    let stored: Option<Instant> = None; // bare type: not a read, no finding
    let t0 = Instant::now();
    let epoch = std::time::SystemTime::UNIX_EPOCH;
}
