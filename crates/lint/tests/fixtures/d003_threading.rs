// Fixture: D003 threading outside sim::pool.
fn stray() {
    std::thread::sleep(std::time::Duration::from_millis(1)); // sleep is fine
    let h = std::thread::spawn(|| 42);
    let (tx, rx) = std::sync::mpsc::channel::<u32>();
}
