// Fixture: D004 ambient randomness.
use std::collections::hash_map::RandomState;

fn entropy() {
    let hasher = std::collections::hash_map::DefaultHasher::new();
    let rng = thread_rng();
}
