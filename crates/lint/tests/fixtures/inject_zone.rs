// Fixture: the adversarial fault-injection module lives in the engine
// zone. A hypothetical regression that tracked flap state in a HashMap
// or drew gray-drop decisions from ambient RNG would break the
// byte-identity guarantee — scanned as `crates/topology/src/inject.rs`
// these bytes must fire D001 and D004.
use std::collections::HashMap;

fn gray_drops_badly(flaps: &HashMap<u64, bool>) -> bool {
    let roll: f64 = thread_rng().gen();
    roll < 0.5
}
