//! Observability zone gates: the deterministic flight recorder
//! (`crates/metrics/src/trace.rs`) is engine-zone code — no wall clock
//! (D002), hot paths registered under H001 — while the wall-clock
//! profiling hooks (`crates/bench/src/profile.rs`, the daemon's
//! `crates/service/src/metrics.rs`) live exactly where D002 is off.
//! These tests pin that split so a refactor cannot silently move the
//! recorder out of the policed zone or drop its hot-path annotations.

use std::path::Path;

fn fixture() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/obs_zone.rs");
    std::fs::read_to_string(&path).expect("obs_zone.rs fixture")
}

fn rule_lines(findings: &[lint::Finding]) -> Vec<(&'static str, usize)> {
    findings.iter().map(|f| (f.rule.id(), f.line)).collect()
}

/// The recorder path is an engine zone: wall clock fires D002 and the
/// unjustified push inside the `lint: hot-path` region fires H001.
#[test]
fn wall_clock_in_the_trace_recorder_fires_d002() {
    let src = fixture();
    let f = lint::scan_file("crates/metrics/src/trace.rs", &src);
    assert_eq!(
        rule_lines(&f),
        vec![("D002", 8), ("H001", 11)],
        "recorder zone must flag the clock and the hot-path push: {f:?}"
    );
}

/// The same bytes under the profiling-hook paths: D002 is relaxed (wall
/// clock is their job) but the annotated hot region still fires H001 —
/// the annotation travels with the code, not the zone.
#[test]
fn wall_clock_in_profiling_hooks_does_not_fire_d002() {
    let src = fixture();
    for hooks in [
        "crates/bench/src/profile.rs",
        "crates/service/src/metrics.rs",
    ] {
        let f = lint::scan_file(hooks, &src);
        assert_eq!(
            rule_lines(&f),
            vec![("H001", 11)],
            "{hooks}: profiling hooks may read the clock, got {f:?}"
        );
    }
}

/// The causal span-recording sites in both engines are engine-zone code
/// too: each `trace_epoch` stamps `FlowSpans` milestones from the merged
/// per-epoch state inside a registered hot-path region, and the shipped
/// sources must keep scanning clean so span emission can never grow a
/// wall clock, an unordered map, or an unregistered hot-path allocation.
#[test]
fn the_shipped_span_recording_sites_are_registered_and_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    for rel in [
        "crates/negotiator/src/sim.rs",
        "crates/oblivious/src/sim.rs",
    ] {
        let src = std::fs::read_to_string(root.join(rel)).expect("shipped engine source");
        assert!(
            src.contains("FlowSpans"),
            "{rel}: the engine must stamp causal flow spans"
        );
        assert!(
            src.contains("// lint: hot-path"),
            "{rel}: the span-recording epoch loop must stay a registered H001 hot region"
        );
        let f = lint::scan_file(rel, &src);
        assert!(f.is_empty(), "{rel}: shipped engine has findings: {f:?}");
    }
}

/// The real recorder scans clean under its real path: its hot-path
/// region is registered and the one sanctioned allocation (the append
/// into preallocated ring capacity) carries a justified allow.
#[test]
fn the_shipped_recorder_is_registered_and_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let rel = "crates/metrics/src/trace.rs";
    let src = std::fs::read_to_string(root.join(rel)).expect("shipped recorder source");
    assert!(
        src.contains("// lint: hot-path"),
        "the recorder's record() must stay a registered H001 hot region"
    );
    assert!(
        src.contains("lint: allow(H001)"),
        "the ring append must stay an explicitly justified allocation"
    );
    let f = lint::scan_file(rel, &src);
    assert!(f.is_empty(), "shipped recorder has findings: {f:?}");
}
