//! A minimal Rust lexer for the determinism linter.
//!
//! The rules in this crate are lexical: they match identifier patterns
//! (`HashMap`, `Instant :: now`, `. push`) against a token stream, so the
//! lexer's one job is to report identifiers, punctuation and line comments
//! at exact byte offsets while *never* mistaking the inside of a string,
//! char literal, block comment or lifetime for code. It does not parse —
//! no AST, no types — which keeps it dependency-free and fast, at the
//! cost of being unable to see through type aliases (the rule docs say
//! so).
//!
//! Line comments are real tokens because lint directives live in them
//! (`// lint: allow(D001) <justification>`, `// lint: hot-path`). Block
//! and doc comments are skipped: a directive must be a plain `//` comment,
//! which conveniently lets this crate's own documentation show directive
//! examples without triggering them.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `for`, `spawn`).
    Ident,
    /// A single punctuation byte (`.`, `:`, `!`, `{`, ...).
    Punct(u8),
    /// A `//` line comment (not `///` or `//!` doc comments), including
    /// the slashes, excluding the newline.
    Comment,
}

/// One token with its byte span in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    /// Kind of token.
    pub kind: TokKind,
    /// Byte offset of the first character.
    pub pos: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Tok {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.pos..self.end]
    }
}

/// Tokenize `src`. Unterminated strings/comments end at end-of-input
/// rather than erroring: the linter scans code that already compiles, so
/// recovery beats rejection.
pub fn lex(src: &str) -> Vec<Tok> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                // Doc comments (`///`, `//!`) are documentation, not
                // directives; skip them so docs can quote directive syntax.
                let doc = matches!(bytes.get(start + 2), Some(b'/') | Some(b'!'));
                if !doc {
                    toks.push(Tok {
                        kind: TokKind::Comment,
                        pos: start,
                        end: i,
                    });
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => i = skip_block_comment(bytes, i),
            b'"' => i = skip_string(bytes, i),
            b'\'' => i = skip_char_or_lifetime(bytes, i),
            b'0'..=b'9' => i = skip_number(bytes, i),
            b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                let start = i;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let word = &src[start..i];
                // Raw/byte string prefixes glue onto the quote that
                // follows: r"..", r#".."#, b"..", br#".."#.
                match (word, bytes.get(i)) {
                    ("r" | "br" | "rb", Some(b'"' | b'#')) => i = skip_raw_string(bytes, i),
                    ("b", Some(b'"')) => i = skip_string(bytes, i),
                    _ => toks.push(Tok {
                        kind: TokKind::Ident,
                        pos: start,
                        end: i,
                    }),
                }
            }
            _ if b < 0x80 => {
                toks.push(Tok {
                    kind: TokKind::Punct(b),
                    pos: i,
                    end: i + 1,
                });
                i += 1;
            }
            // Multi-byte UTF-8 (only ever inside literals we already
            // skipped, or stray in comments): consume the full scalar.
            _ => {
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] & 0xC0 == 0x80 {
                    j += 1;
                }
                i = j;
            }
        }
    }
    toks
}

/// Skip a (possibly nested) `/* ... */` comment starting at `i`.
fn skip_block_comment(bytes: &[u8], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
            depth += 1;
            i += 2;
        } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            i += 1;
        }
    }
    i
}

/// Skip a `"..."` string with escapes, starting at the opening quote.
fn skip_string(bytes: &[u8], mut i: usize) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw string: `i` sits on the first `#` or `"` after the prefix.
fn skip_raw_string(bytes: &[u8], mut i: usize) -> usize {
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return i; // not actually a raw string; resync on the next byte
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'"'
            && bytes[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&b| b == b'#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    i
}

/// Skip a char literal or step over a lifetime, starting at the `'`.
fn skip_char_or_lifetime(bytes: &[u8], i: usize) -> usize {
    match bytes.get(i + 1) {
        // Escaped char literal: '\n', '\\', '\u{1F600}'.
        Some(b'\\') => {
            let mut j = i + 2;
            while j < bytes.len() && bytes[j] != b'\'' {
                j += 1;
            }
            (j + 1).min(bytes.len())
        }
        // Alphanumeric start: 'a' is a char literal, 'a without a closing
        // quote (and anything longer, 'static) is a lifetime.
        Some(&c) if c == b'_' || c.is_ascii_alphanumeric() => {
            let mut j = i + 2;
            while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric()) {
                j += 1;
            }
            if j == i + 2 && bytes.get(j) == Some(&b'\'') {
                j + 1
            } else {
                j
            }
        }
        // Any other single (possibly multi-byte) char literal: '(' , 'é'.
        Some(_) => {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] != b'\'' {
                j += 1;
            }
            (j + 1).min(bytes.len())
        }
        None => i + 1,
    }
}

/// Skip a numeric literal (ints, floats, hex, suffixes). A `.` continues
/// the number only when a digit follows, so `0..n` lexes as `0`, `..`, `n`.
fn skip_number(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() {
        let b = bytes[i];
        let continues = b == b'_'
            || b.is_ascii_alphanumeric()
            || (b == b'.' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit()));
        if !continues {
            break;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src))
            .collect()
    }

    #[test]
    fn identifiers_and_punctuation_carry_offsets() {
        let src = "let x = a.b(1);";
        let toks = lex(src);
        assert_eq!(idents(src), vec!["let", "x", "a", "b"]);
        let dot = toks
            .iter()
            .find(|t| t.kind == TokKind::Punct(b'.'))
            .unwrap();
        assert_eq!(dot.pos, 9);
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"let s = "HashMap::new() // lint: hot-path"; t"#;
        assert_eq!(idents(src), vec!["let", "s", "t"]);
        assert!(lex(src).iter().all(|t| t.kind != TokKind::Comment));
    }

    #[test]
    fn raw_and_byte_strings_hide_their_contents() {
        let src = r##"let a = r#"HashMap "quoted" inside"#; let b2 = b"SystemTime"; let c = r"thread"; d"##;
        assert_eq!(idents(src), vec!["let", "a", "let", "b2", "let", "c", "d"]);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'y'; let q = '\\''; let n = '\\n'; }";
        let ids = idents(src);
        assert!(ids.contains(&"f") && ids.contains(&"str") && ids.contains(&"c"));
        // The lifetime 'a and the char 'y' must not swallow trailing code.
        assert!(ids.contains(&"q") && ids.contains(&"n"));
        assert!(!ids.contains(&"y"), "char literal contents are not idents");
    }

    #[test]
    fn line_comments_are_tokens_doc_comments_are_not() {
        let src = "// lint: hot-path\n/// doc with lint: allow(D001)\n//! inner doc\ncode";
        let toks = lex(src);
        let comments: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Comment).collect();
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].text(src), "// lint: hot-path");
        assert_eq!(idents(src), vec!["code"]);
    }

    #[test]
    fn block_comments_nest_and_hide() {
        let src = "a /* outer /* inner HashMap */ still */ b";
        assert_eq!(idents(src), vec!["a", "b"]);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let src = "for i in 0..8 { x[1.5e3]; y[0xFFu64]; }";
        assert_eq!(idents(src), vec!["for", "i", "in", "x", "y"]);
        // `..` survives as two dots.
        let dots = lex(src)
            .iter()
            .filter(|t| t.kind == TokKind::Punct(b'.'))
            .count();
        assert_eq!(dots, 2);
    }
}
