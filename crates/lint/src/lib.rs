//! Static gate for the workspace's determinism invariants.
//!
//! The golden-report suites prove determinism *dynamically* — identical
//! bytes at any `--jobs` count — but only along the paths a test happens
//! to drive. This crate proves the invariants lexically across every
//! source file: no unordered iteration in engine crates (D001), no wall
//! clock outside the timing harness (D002), no threading outside
//! `sim::pool` (D003), no ambient randomness anywhere (D004), and no
//! allocation-capable calls inside annotated hot regions (H001). Run it
//! as `paper lint [--json]`; CI fails on any finding.
//!
//! # Policy zones
//!
//! * **Engine** — `sim`, `topology`, `negotiator`, `oblivious`,
//!   `workload`, `metrics`, `scenario`, plus the root crate's `src/`,
//!   `tests/` and `examples/`: everything whose behaviour can reach a
//!   report. All determinism rules apply.
//! * **Infra** — `bench`, `service`, `lint`: the harness around the
//!   engine. May iterate hash maps (D001 off) and read the wall clock
//!   (D002 off); threading and ambient randomness rules still apply.
//!
//! Vendored stand-ins (`vendor/`) and lint test fixtures are not scanned.

pub mod lexer;
pub mod rules;

pub use rules::{Finding, Rule, RuleSet};

use metrics::json::Json;
use std::fs;
use std::path::{Path, PathBuf};

/// Which policy zone a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Zone {
    /// Deterministic simulation code: all rules apply.
    Engine,
    /// Harness code around the engine: D001/D002 relaxed.
    Infra,
}

const ENGINE_CRATES: &[&str] = &[
    "sim",
    "topology",
    "negotiator",
    "oblivious",
    "workload",
    "metrics",
    "scenario",
];

const INFRA_CRATES: &[&str] = &["bench", "service", "lint"];

/// The zone for a workspace-relative path (forward slashes), or `None`
/// for files outside the policy (vendored code, fixtures).
pub fn zone_of(rel: &str) -> Option<Zone> {
    if rel.contains("/fixtures/") || rel.starts_with("vendor/") || rel.starts_with("target/") {
        return None;
    }
    if let Some(rest) = rel.strip_prefix("crates/") {
        let krate = rest.split('/').next().unwrap_or("");
        if ENGINE_CRATES.contains(&krate) {
            return Some(Zone::Engine);
        }
        if INFRA_CRATES.contains(&krate) {
            return Some(Zone::Infra);
        }
        return None;
    }
    // The root crate: src/, tests/, examples/ are engine surface (they
    // feed or assert golden reports).
    if rel.starts_with("src/") || rel.starts_with("tests/") || rel.starts_with("examples/") {
        return Some(Zone::Engine);
    }
    None
}

/// The rule gates for a workspace-relative path.
pub fn rules_for(rel: &str, zone: Zone) -> RuleSet {
    let krate = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    RuleSet {
        d001: zone == Zone::Engine,
        // Wall clock is the *job* of the timing harness and the daemon.
        d002: !matches!(krate, "bench" | "service"),
        // sim::pool (across runs) and sim::shard (within a run) are the
        // sanctioned homes for threads and channels.
        d003: !matches!(rel, "crates/sim/src/pool.rs" | "crates/sim/src/shard.rs"),
    }
}

/// Scan one file's source text under the policy for `rel`.
pub fn scan_file(rel: &str, src: &str) -> Vec<Finding> {
    match zone_of(rel) {
        Some(zone) => rules::scan_source(rel, src, rules_for(rel, zone)),
        None => Vec::new(),
    }
}

/// Everything `scan_workspace` learned: the findings plus the scan's
/// extent, so reports can show coverage.
#[derive(Debug)]
pub struct ScanReport {
    /// All findings, sorted by (file, line, column, rule).
    pub findings: Vec<Finding>,
    /// Workspace-relative paths scanned, sorted.
    pub files: Vec<String>,
}

/// Scan every policed `.rs` file under `root` (a workspace checkout).
/// Deterministic: files are visited in sorted path order, so two runs —
/// or two machines — produce byte-identical reports.
pub fn scan_workspace(root: &Path) -> Result<ScanReport, String> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    let mut findings = Vec::new();
    let mut files = Vec::new();
    for rel in paths {
        if zone_of(&rel).is_none() {
            continue;
        }
        let src = fs::read_to_string(root.join(&rel)).map_err(|e| format!("{rel}: {e}"))?;
        findings.extend(scan_file(&rel, &src));
        files.push(rel);
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.column, a.rule).cmp(&(&b.file, b.line, b.column, b.rule))
    });
    Ok(ScanReport { findings, files })
}

/// Directories never worth descending into.
const SKIP_DIRS: &[&str] = &[".git", "target", "vendor", "results", "node_modules"];

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path: PathBuf = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Human-readable report, one finding per line in compiler style:
/// `file:line:column: RULE message` with an indented `hint:` line.
pub fn render_text(report: &ScanReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}:{}: {} {}\n    hint: {}\n",
            f.file,
            f.line,
            f.column,
            f.rule.id(),
            f.message,
            f.rule.hint()
        ));
    }
    out.push_str(&format!(
        "{} finding{} across {} files\n",
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" },
        report.files.len()
    ));
    out
}

/// Machine-readable report (`paper lint --json`). Schema:
///
/// ```json
/// {
///   "schema_version": 1,
///   "files_scanned": 103,
///   "findings": [
///     {"file": "crates/x/src/a.rs", "line": 3, "column": 9,
///      "rule": "D001", "message": "...", "hint": "..."}
///   ]
/// }
/// ```
pub fn render_json(report: &ScanReport) -> Json {
    let mut doc = Json::object();
    doc.push("schema_version", 1u64)
        .push("files_scanned", report.files.len());
    let findings = report
        .findings
        .iter()
        .map(|f| {
            let mut o = Json::object();
            o.push("file", f.file.as_str())
                .push("line", f.line)
                .push("column", f.column)
                .push("rule", f.rule.id())
                .push("message", f.message.as_str())
                .push("hint", f.rule.hint());
            o
        })
        .collect();
    doc.push("findings", Json::Arr(findings));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zones_follow_the_policy_table() {
        assert_eq!(zone_of("crates/sim/src/time.rs"), Some(Zone::Engine));
        assert_eq!(zone_of("crates/negotiator/src/sim.rs"), Some(Zone::Engine));
        assert_eq!(zone_of("crates/bench/src/cli.rs"), Some(Zone::Infra));
        assert_eq!(zone_of("crates/service/src/jobs.rs"), Some(Zone::Infra));
        assert_eq!(zone_of("tests/golden_report.rs"), Some(Zone::Engine));
        assert_eq!(zone_of("src/lib.rs"), Some(Zone::Engine));
        assert_eq!(zone_of("vendor/proptest/src/lib.rs"), None);
        assert_eq!(zone_of("crates/lint/tests/fixtures/d001.rs"), None);
    }

    #[test]
    fn infra_relaxes_d001_and_harness_crates_relax_d002() {
        let engine = rules_for("crates/sim/src/time.rs", Zone::Engine);
        assert!(engine.d001 && engine.d002 && engine.d003);
        let bench = rules_for("crates/bench/src/timing.rs", Zone::Infra);
        assert!(!bench.d001 && !bench.d002 && bench.d003);
        let lint = rules_for("crates/lint/src/lib.rs", Zone::Infra);
        assert!(!lint.d001 && lint.d002 && lint.d003);
        let pool = rules_for("crates/sim/src/pool.rs", Zone::Engine);
        assert!(!pool.d003, "sim::pool owns the cross-run threads");
        let shard = rules_for("crates/sim/src/shard.rs", Zone::Engine);
        assert!(!shard.d003, "sim::shard owns the intra-run threads");
        let parallel = rules_for("crates/negotiator/src/sim/parallel.rs", Zone::Engine);
        assert!(
            parallel.d003,
            "engine shard consumers must go through sim::shard"
        );
    }

    #[test]
    fn d003_zone_extension_gates_by_path_not_content() {
        // The same threading tokens are sanctioned inside sim::shard and a
        // finding everywhere else — including the engine module that
        // *consumes* the shard API.
        let src = "let h = std::thread::spawn(f);\nuse std::sync::mpsc;\n";
        assert!(
            scan_file("crates/sim/src/shard.rs", src).is_empty(),
            "sim::shard is a sanctioned threading zone"
        );
        let findings = scan_file("crates/negotiator/src/sim/parallel.rs", src);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == Rule::D003));
    }

    #[test]
    fn scan_file_skips_unpoliced_paths() {
        let src = "let m = HashMap::new();\n";
        assert!(scan_file("vendor/proptest/src/lib.rs", src).is_empty());
        assert_eq!(scan_file("crates/sim/src/x.rs", src).len(), 1);
    }

    #[test]
    fn json_report_shape() {
        let report = ScanReport {
            findings: scan_file("crates/sim/src/x.rs", "let m = HashMap::new();\n"),
            files: vec!["crates/sim/src/x.rs".to_string()],
        };
        let doc = render_json(&report);
        assert_eq!(doc.get("schema_version").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("files_scanned").unwrap().as_u64(), Some(1));
        let f = &doc.get("findings").unwrap().as_array().unwrap()[0];
        assert_eq!(f.get("rule").unwrap().as_str(), Some("D001"));
        assert_eq!(f.get("line").unwrap().as_u64(), Some(1));
        assert_eq!(f.get("column").unwrap().as_u64(), Some(9));
        assert!(f.get("hint").unwrap().as_str().unwrap().contains("BTree"));
        let text = render_text(&report);
        assert!(text.contains("crates/sim/src/x.rs:1:9: D001"), "{text}");
    }
}
