//! The determinism rules and the suppression/annotation machinery.
//!
//! Every rule is a lexical pattern over the token stream produced by
//! [`crate::lexer`]. That makes the analysis conservative-by-construction:
//! it cannot see through aliases or macros, so it errs toward flagging —
//! and a justified suppression is the sanctioned escape hatch. The
//! directives, written as plain `//` comments:
//!
//! * `lint: hot-path` — the next brace-balanced block is a hot region;
//!   H001 flags allocation-capable calls inside it.
//! * `lint: allow(D001) <justification>` — suppress rule `D001` on this
//!   line and the next. A bare `allow` with no justification, an unknown
//!   rule id, or an `allow` that matches nothing is itself a finding
//!   (S001), so the suppression inventory can never rot silently.

use crate::lexer::{lex, Tok, TokKind};
use metrics::json::line_col;

/// The rule set. Ordering is the report order within a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Unordered iteration: `HashMap`/`HashSet` in an engine-zone crate.
    D001,
    /// Wall clock: `Instant::now` / `SystemTime` outside bench/service.
    D002,
    /// Stray threading: `thread::spawn` / `mpsc` outside `sim::pool`.
    D003,
    /// Ambient randomness: RNG state not derived from the experiment seed.
    D004,
    /// Allocation-capable call inside a `lint: hot-path` region.
    H001,
    /// Malformed, unjustified or unused suppression/directive.
    S001,
}

impl Rule {
    /// Stable rule id (`D001`, ...).
    pub fn id(self) -> &'static str {
        match self {
            Rule::D001 => "D001",
            Rule::D002 => "D002",
            Rule::D003 => "D003",
            Rule::D004 => "D004",
            Rule::H001 => "H001",
            Rule::S001 => "S001",
        }
    }

    /// Parse a rule id (`"D003"` → [`Rule::D003`]); `None` for unknown ids.
    pub fn from_id(id: &str) -> Option<Rule> {
        Some(match id {
            "D001" => Rule::D001,
            "D002" => Rule::D002,
            "D003" => Rule::D003,
            "D004" => Rule::D004,
            "H001" => Rule::H001,
            "S001" => Rule::S001,
            _ => return None,
        })
    }

    /// One-line fix hint attached to every finding of this rule.
    pub fn hint(self) -> &'static str {
        match self {
            Rule::D001 => "use BTreeMap/BTreeSet, or sort before iterating; iteration order must not reach a report",
            Rule::D002 => "simulated time comes from sim::time; wall-clock timing belongs in bench/service",
            Rule::D003 => "route parallelism through sim::pool so the worker count can never change output bytes",
            Rule::D004 => "derive a sim::Xoshiro256 from the experiment seed instead of ambient entropy",
            Rule::H001 => "hot-path regions must reuse scratch buffers (README § Performance); move the allocation out or justify it",
            Rule::S001 => "write `// lint: allow(RULE) <justification>` directly above the line it excuses",
        }
    }
}

/// Which rules apply to a file. Derived from the policy zones in
/// [`crate::zone_of`]; H001 and S001 always apply (they are driven by
/// annotations in the file itself).
#[derive(Debug, Clone, Copy)]
pub struct RuleSet {
    /// Check D001 (engine zones only).
    pub d001: bool,
    /// Check D002 (everywhere but bench/service).
    pub d002: bool,
    /// Check D003 (everywhere but `sim::pool` itself).
    pub d003: bool,
}

/// One confirmed violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (in characters, matching the scenario validator).
    pub column: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// What was seen, naming the offending token.
    pub message: String,
}

/// A parsed `lint:` directive.
enum Directive {
    /// `lint: hot-path` at this byte offset.
    HotPath { pos: usize },
    /// `lint: allow(RULE) <justification>`.
    Allow {
        pos: usize,
        rule: Rule,
        justified: bool,
    },
}

/// Scan one file's source. `file` is the label findings carry.
pub fn scan_source(file: &str, src: &str, rules: RuleSet) -> Vec<Finding> {
    let toks = lex(src);
    let code: Vec<Tok> = toks
        .iter()
        .filter(|t| t.kind != TokKind::Comment)
        .copied()
        .collect();
    let mut findings = Vec::new();
    let mut directives = Vec::new();
    for tok in toks.iter().filter(|t| t.kind == TokKind::Comment) {
        parse_directive(file, src, tok, &mut directives, &mut findings);
    }
    let hot_regions: Vec<(usize, usize)> = directives
        .iter()
        .filter_map(|d| match d {
            Directive::HotPath { pos } => Some(hot_region(&code, *pos)),
            Directive::Allow { .. } => None,
        })
        .flatten()
        .collect();
    let mut raw = Vec::new();
    scan_code(file, src, &code, rules, &hot_regions, &mut raw);
    apply_suppressions(file, src, &directives, raw, &mut findings);
    findings.sort_by_key(|f| (f.line, f.column, f.rule));
    findings
}

/// Parse one comment token into a directive, or a finding when it is a
/// malformed one. Comments that do not start with `lint:` are prose.
fn parse_directive(
    file: &str,
    src: &str,
    tok: &Tok,
    directives: &mut Vec<Directive>,
    findings: &mut Vec<Finding>,
) {
    let body = tok.text(src).trim_start_matches('/').trim();
    let Some(rest) = body.strip_prefix("lint:") else {
        return;
    };
    let rest = rest.trim();
    if rest == "hot-path" {
        directives.push(Directive::HotPath { pos: tok.pos });
        return;
    }
    if let Some(args) = rest.strip_prefix("allow") {
        let args = args.trim_start();
        if let Some(inner) = args.strip_prefix('(') {
            if let Some((id, justification)) = inner.split_once(')') {
                let id = id.trim();
                let justification = justification.trim();
                match Rule::from_id(id) {
                    Some(Rule::S001) | None => findings.push(finding_at(
                        file,
                        src,
                        tok.pos,
                        Rule::S001,
                        format!("`allow({id})` names no suppressible rule"),
                    )),
                    Some(rule) => {
                        let justified = !justification.is_empty();
                        if !justified {
                            findings.push(finding_at(
                                file,
                                src,
                                tok.pos,
                                Rule::S001,
                                format!("suppression of {} carries no justification", rule.id()),
                            ));
                        }
                        directives.push(Directive::Allow {
                            pos: tok.pos,
                            rule,
                            justified,
                        });
                    }
                }
                return;
            }
        }
        findings.push(finding_at(
            file,
            src,
            tok.pos,
            Rule::S001,
            "malformed `allow` — expected `allow(RULE) <justification>`".to_string(),
        ));
        return;
    }
    findings.push(finding_at(
        file,
        src,
        tok.pos,
        Rule::S001,
        format!("unknown lint directive `{rest}`"),
    ));
}

/// The brace-balanced region opened by the first `{` after `pos`.
fn hot_region(code: &[Tok], pos: usize) -> Option<(usize, usize)> {
    let start = code
        .iter()
        .position(|t| t.pos > pos && t.kind == TokKind::Punct(b'{'))?;
    let mut depth = 0usize;
    for tok in &code[start..] {
        match tok.kind {
            TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    return Some((code[start].pos, tok.end));
                }
            }
            _ => {}
        }
    }
    // Unclosed at EOF (mid-edit file): the region runs to the end.
    Some((code[start].pos, usize::MAX))
}

/// Method names whose call can allocate — the H001 set. Lexical, so the
/// rule fires on the *name*, not the receiver type; justify legitimate
/// uses (e.g. pushes into a capacity-reusing scratch vector).
const HOT_ALLOC_METHODS: &[&str] = &["push", "clone", "to_string", "collect"];

/// Walk the code tokens and emit raw findings (before suppression).
fn scan_code(
    file: &str,
    src: &str,
    code: &[Tok],
    rules: RuleSet,
    hot: &[(usize, usize)],
    out: &mut Vec<Finding>,
) {
    let ident = |i: usize| -> Option<&str> {
        code.get(i)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src))
    };
    let punct = |i: usize, b: u8| code.get(i).is_some_and(|t| t.kind == TokKind::Punct(b));
    let path_sep = |i: usize| punct(i, b':') && punct(i + 1, b':');
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokKind::Ident {
            continue;
        }
        let word = tok.text(src);
        match word {
            "HashMap" | "HashSet" if rules.d001 => out.push(finding_at(
                file,
                src,
                tok.pos,
                Rule::D001,
                format!("`{word}` in an engine-zone crate — iteration order is unordered and can leak into reports"),
            )),
            "Instant" if rules.d002 && path_sep(i + 1) && ident(i + 3) == Some("now") => {
                out.push(finding_at(
                    file,
                    src,
                    tok.pos,
                    Rule::D002,
                    "`Instant::now` — wall-clock read in deterministic code".to_string(),
                ))
            }
            "SystemTime" if rules.d002 => out.push(finding_at(
                file,
                src,
                tok.pos,
                Rule::D002,
                "`SystemTime` — wall-clock read in deterministic code".to_string(),
            )),
            "spawn"
                if rules.d003
                    && i >= 3
                    && ident(i - 3) == Some("thread")
                    && path_sep(i - 2) =>
            {
                out.push(finding_at(
                    file,
                    src,
                    tok.pos,
                    Rule::D003,
                    "`thread::spawn` outside sim::pool".to_string(),
                ))
            }
            "mpsc" if rules.d003 => out.push(finding_at(
                file,
                src,
                tok.pos,
                Rule::D003,
                "`mpsc` channel outside sim::pool".to_string(),
            )),
            "RandomState" | "DefaultHasher" | "thread_rng" | "from_entropy" | "getrandom" => {
                out.push(finding_at(
                    file,
                    src,
                    tok.pos,
                    Rule::D004,
                    format!("`{word}` — randomness not derived from the experiment seed"),
                ))
            }
            _ => {}
        }
        // H001 fires only inside annotated hot regions.
        if !hot.iter().any(|&(a, b)| tok.pos >= a && tok.pos < b) {
            continue;
        }
        let method_call = i >= 1 && punct(i - 1, b'.') && HOT_ALLOC_METHODS.contains(&word);
        let macro_call = word == "format" && punct(i + 1, b'!');
        let ctor = matches!(word, "Vec" | "Box") && path_sep(i + 1) && ident(i + 3) == Some("new");
        if method_call || macro_call || ctor {
            let shown = if macro_call {
                "format!".to_string()
            } else if ctor {
                format!("{word}::new")
            } else {
                format!(".{word}(..)")
            };
            out.push(finding_at(
                file,
                src,
                tok.pos,
                Rule::H001,
                format!("`{shown}` — allocation-capable call inside a `lint: hot-path` region"),
            ));
        }
    }
}

/// Apply `allow` directives: a suppression at line L covers findings of
/// its rule on lines L and L+1. Unused suppressions become S001 findings.
fn apply_suppressions(
    file: &str,
    src: &str,
    directives: &[Directive],
    raw: Vec<Finding>,
    out: &mut Vec<Finding>,
) {
    struct Span {
        rule: Rule,
        lines: [usize; 2],
        pos: usize,
        justified: bool,
        used: bool,
    }
    let mut spans: Vec<Span> = directives
        .iter()
        .filter_map(|d| match d {
            Directive::Allow {
                pos,
                rule,
                justified,
            } => {
                let (line, _) = line_col(src, *pos);
                Some(Span {
                    rule: *rule,
                    lines: [line, line + 1],
                    pos: *pos,
                    justified: *justified,
                    used: false,
                })
            }
            Directive::HotPath { .. } => None,
        })
        .collect();
    for finding in raw {
        let suppressed = spans
            .iter_mut()
            .find(|s| s.rule == finding.rule && s.lines.contains(&finding.line));
        match suppressed {
            Some(span) => span.used = true,
            None => out.push(finding),
        }
    }
    for span in spans {
        if !span.used && span.justified {
            out.push(finding_at(
                file,
                src,
                span.pos,
                Rule::S001,
                format!(
                    "`allow({})` suppresses nothing on the next line — stale suppression",
                    span.rule.id()
                ),
            ));
        }
    }
}

fn finding_at(file: &str, src: &str, pos: usize, rule: Rule, message: String) -> Finding {
    let (line, column) = line_col(src, pos);
    Finding {
        file: file.to_string(),
        line,
        column,
        rule,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: RuleSet = RuleSet {
        d001: true,
        d002: true,
        d003: true,
    };

    fn ids(findings: &[Finding]) -> Vec<(&'static str, usize, usize)> {
        findings
            .iter()
            .map(|f| (f.rule.id(), f.line, f.column))
            .collect()
    }

    #[test]
    fn d001_fires_on_the_token_not_on_strings_or_comments() {
        let src = "use std::collections::HashMap;\n// HashMap in prose\nlet s = \"HashMap\";\n";
        let f = scan_source("t.rs", src, ALL);
        assert_eq!(ids(&f), vec![("D001", 1, 23)]);
    }

    #[test]
    fn d002_needs_the_now_call_for_instant() {
        let src =
            "let t: Instant = saved;\nlet s = Instant::now();\nlet w = SystemTime::UNIX_EPOCH;\n";
        let f = scan_source("t.rs", src, ALL);
        assert_eq!(ids(&f), vec![("D002", 2, 9), ("D002", 3, 9)]);
    }

    #[test]
    fn d003_matches_spawn_and_mpsc_but_not_sleep() {
        let src = "std::thread::sleep(d);\nstd::thread::spawn(f);\nuse std::sync::mpsc;\n";
        let f = scan_source("t.rs", src, ALL);
        assert_eq!(ids(&f), vec![("D003", 2, 14), ("D003", 3, 16)]);
    }

    #[test]
    fn h001_only_inside_hot_regions() {
        let src = "\
fn cold() { v.push(1); }
// lint: hot-path
fn hot(v: &mut Vec<u32>) {
    v.push(1);
    let s = x.clone();
    let t = format!(\"{x}\");
    let b = Box::new(1);
}
fn cold2() { let v = Vec::new(); }
";
        let f = scan_source("t.rs", src, ALL);
        assert_eq!(
            ids(&f),
            vec![
                ("H001", 4, 7),
                ("H001", 5, 15),
                ("H001", 6, 13),
                ("H001", 7, 13),
            ]
        );
    }

    #[test]
    fn suppression_covers_its_line_and_the_next() {
        let src = "\
// lint: allow(D001) tiny fixed set, order never observed
let a = HashMap::new();
let b = HashSet::new();
";
        let f = scan_source("t.rs", src, ALL);
        // Line 2's D001 is excused; line 3's is a different line pair? No —
        // the span covers lines 1 and 2, so line 3 still fires.
        assert_eq!(ids(&f), vec![("D001", 3, 9)]);
    }

    #[test]
    fn bare_allow_still_suppresses_but_is_itself_a_finding() {
        let src = "// lint: allow(D001)\nlet a = HashMap::new();\n";
        let f = scan_source("t.rs", src, ALL);
        assert_eq!(ids(&f), vec![("S001", 1, 1)]);
        assert!(
            f[0].message.contains("no justification"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn unknown_rule_and_unknown_directive_are_findings() {
        let src = "// lint: allow(D999) because\n// lint: frobnicate\nlet x = 1;\n";
        let f = scan_source("t.rs", src, ALL);
        assert_eq!(ids(&f), vec![("S001", 1, 1), ("S001", 2, 1)]);
    }

    #[test]
    fn stale_suppression_is_a_finding() {
        let src = "// lint: allow(D001) nothing here anymore\nlet x = 1;\n";
        let f = scan_source("t.rs", src, ALL);
        assert_eq!(ids(&f), vec![("S001", 1, 1)]);
        assert!(f[0].message.contains("stale"), "{}", f[0].message);
    }

    #[test]
    fn trailing_allow_excuses_its_own_line() {
        let src = "let a = HashMap::new(); // lint: allow(D001) fixed two-key map, lookups only\n";
        let f = scan_source("t.rs", src, ALL);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn rule_set_gates_apply() {
        let src = "let a: HashMap<u8, u8>; let t = Instant::now(); std::thread::spawn(f);\n";
        let none = RuleSet {
            d001: false,
            d002: false,
            d003: false,
        };
        assert!(scan_source("t.rs", src, none).is_empty());
        // D004 has no gate: ambient entropy is wrong in every zone.
        let f = scan_source("t.rs", "let h = RandomState::new();\n", none);
        assert_eq!(ids(&f), vec![("D004", 1, 9)]);
    }
}
