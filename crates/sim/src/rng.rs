//! Portable deterministic pseudo-random number generation.
//!
//! Experiments must be reproducible from a seed alone, across platforms and
//! library versions, so the workspace carries its own implementation of
//! xoshiro256++ (Blackman & Vigna) seeded through splitmix64. The generator
//! is small, fast, and passes BigCrush; it is not cryptographic, which is
//! fine for workload synthesis.

/// xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
const fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl Xoshiro256 {
    /// Create a generator from a 64-bit seed. Any seed (including 0) is
    /// valid: the state is expanded with splitmix64, which never yields the
    /// all-zero state.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Xoshiro256 {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }

    /// Uniform in `[0, bound)`. Uses Lemire's multiply-shift rejection
    /// method, which is unbiased.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially distributed sample with the given mean.
    ///
    /// Used for Poisson flow inter-arrival times (§4.1 of the paper).
    #[inline]
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        // Inverse-CDF; guard the log argument away from 0.
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Derive an independent generator (for splitting one experiment seed
    /// into per-component streams without correlation).
    pub fn fork(&mut self) -> Self {
        Xoshiro256::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256::new(42);
        let mut b = Xoshiro256::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::new(1);
        let mut b = Xoshiro256::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Xoshiro256::new(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, 0);
        assert_ne!(x, y);
    }

    #[test]
    fn next_below_stays_in_range_and_covers() {
        let mut r = Xoshiro256::new(7);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.next_below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoshiro256::new(9);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn exp_mean_roughly_correct() {
        let mut r = Xoshiro256::new(11);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.next_exp(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean} too far from 3.0");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent_of_parent_continuation() {
        let mut parent = Xoshiro256::new(99);
        let mut child = parent.fork();
        let c: Vec<u64> = (0..10).map(|_| child.next_u64()).collect();
        let p: Vec<u64> = (0..10).map(|_| parent.next_u64()).collect();
        assert_ne!(c, p);
    }
}
