//! Windowed bandwidth time-series.
//!
//! The appendix micro-observations (Figures 17, 18, 19) plot receiver-side
//! bandwidth against time. [`BandwidthSeries`] accumulates byte deliveries
//! into fixed-width windows and reports each window as a Gbps value.

use crate::time::Nanos;

/// Accumulates `(time, bytes)` samples into fixed windows.
#[derive(Debug, Clone)]
pub struct BandwidthSeries {
    window: Nanos,
    /// Bytes delivered in each window, indexed by `time / window`.
    bytes: Vec<u64>,
}

impl BandwidthSeries {
    /// Series with windows of `window` ns.
    pub fn new(window: Nanos) -> Self {
        assert!(window > 0, "window must be positive");
        BandwidthSeries {
            window,
            bytes: Vec::new(),
        }
    }

    /// Record `bytes` delivered at time `at`.
    pub fn record(&mut self, at: Nanos, bytes: u64) {
        let idx = (at / self.window) as usize;
        if idx >= self.bytes.len() {
            self.bytes.resize(idx + 1, 0);
        }
        self.bytes[idx] += bytes;
    }

    /// Window width in ns.
    pub fn window(&self) -> Nanos {
        self.window
    }

    /// Number of windows touched so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Raw byte counts per window.
    pub fn bytes_per_window(&self) -> &[u64] {
        &self.bytes
    }

    /// `(window start time in ns, bandwidth in Gbps)` points.
    pub fn gbps_points(&self) -> Vec<(Nanos, f64)> {
        self.bytes
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let gbps = (b * 8) as f64 / self.window as f64; // bits per ns == Gbps
                (i as Nanos * self.window, gbps)
            })
            .collect()
    }

    /// Mean bandwidth in Gbps over `[from, to)`.
    pub fn mean_gbps(&self, from: Nanos, to: Nanos) -> f64 {
        if to <= from {
            return 0.0;
        }
        let lo = (from / self.window) as usize;
        let hi = to.div_ceil(self.window) as usize;
        let total: u64 = self.bytes.iter().skip(lo).take(hi.saturating_sub(lo)).sum();
        (total * 8) as f64 / (to - from) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_by_window() {
        let mut s = BandwidthSeries::new(100);
        s.record(0, 10);
        s.record(99, 10);
        s.record(100, 5);
        assert_eq!(s.bytes_per_window(), &[20, 5]);
    }

    #[test]
    fn gbps_conversion() {
        let mut s = BandwidthSeries::new(1000);
        // 12500 bytes in 1000 ns = 100000 bits / 1000 ns = 100 Gbps.
        s.record(500, 12_500);
        let pts = s.gbps_points();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0], (0, 100.0));
    }

    #[test]
    fn mean_gbps_over_range() {
        let mut s = BandwidthSeries::new(100);
        s.record(0, 1250); // 100 Gbps over first window
        s.record(100, 0);
        // Over 200 ns: 1250 bytes * 8 bits / 200 ns = 50 Gbps.
        assert_eq!(s.mean_gbps(0, 200), 50.0);
        assert_eq!(s.mean_gbps(200, 200), 0.0);
    }

    #[test]
    fn empty_series() {
        let s = BandwidthSeries::new(10);
        assert!(s.is_empty());
        assert_eq!(s.mean_gbps(0, 100), 0.0);
        assert!(s.gbps_points().is_empty());
    }
}
