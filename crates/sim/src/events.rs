//! Deterministic discrete-event queue.
//!
//! The slot-synchronous fabric engines advance time directly, but irregular
//! events — flow arrivals, link failures and recoveries, measurement
//! boundaries — go through this queue. Events at the same timestamp pop in
//! insertion order (FIFO tie-breaking), which is what makes runs
//! reproducible: `BinaryHeap` alone leaves equal-key order unspecified.

use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T> {
    at: Nanos,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop earliest (then lowest seq).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of timestamped events with deterministic FIFO tie-breaking.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `payload` at absolute time `at`.
    pub fn push(&mut self, at: Nanos, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(Nanos, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Pop the earliest event only if it is due at or before `now`.
    pub fn pop_due(&mut self, now: Nanos) -> Option<(Nanos, T)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(100, ());
        assert_eq!(q.pop_due(99), None);
        assert_eq!(q.pop_due(100), Some((100, ())));
        assert!(q.is_empty());
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(7, 1u8);
        q.push(3, 2u8);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(3));
    }
}
