//! Deterministic intra-run sharding: contiguous row partitions plus a
//! scoped fork/join helper for the epoch engines' per-ToR phase work.
//!
//! [`pool`](crate::pool) parallelizes *across* independent runs; this
//! module parallelizes *within* one run. The contract that keeps a
//! sharded run byte-identical at any worker count is structural, not
//! statistical:
//!
//! * [`partition`] splits `n` rows (ToRs) into at most `workers`
//!   contiguous shards. Shard boundaries depend on the worker count,
//!   but no output may ever depend on *where* the boundaries fall —
//!   only on the row order, which is the same at any count.
//! * [`map_shards`] runs one closure per shard on scoped threads and
//!   returns the results **in shard order** (panics are propagated,
//!   lowest shard first, like `pool::run_ordered`). Callers merge
//!   per-shard outputs by concatenation or ordered replay, which makes
//!   the merged stream identical to what a single sequential pass over
//!   rows `0..n` would have produced.
//! * [`split_rows`] hands each shard a disjoint `&mut` view of a
//!   row-major state array, so the type system rules out cross-shard
//!   writes instead of a convention doing so.
//!
//! Together with `sim::pool` this is the workspace's only sanctioned
//! threading zone (lint rule D003).

/// One contiguous row range `[start, end)` of a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// First row (inclusive).
    pub start: usize,
    /// One past the last row (exclusive).
    pub end: usize,
}

impl Shard {
    /// Rows in this shard.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the shard covers no rows.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Split `n` rows into `min(workers, n)` contiguous shards whose sizes
/// differ by at most one (earlier shards take the remainder). Returns an
/// empty vector for `n == 0`.
pub fn partition(n: usize, workers: usize) -> Vec<Shard> {
    if n == 0 {
        return Vec::new();
    }
    let k = workers.clamp(1, n);
    let base = n / k;
    let rem = n % k;
    let mut shards = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < rem);
        shards.push(Shard {
            start,
            end: start + len,
        });
        start += len;
    }
    shards
}

/// Split a row-major array (`row_len` items per row) into per-shard
/// mutable windows, one per entry of `shards`, in shard order. The
/// windows are disjoint by construction; the caller keeps no access to
/// `slice` while they live, so each shard may mutate its rows freely.
///
/// Panics if the shards are not contiguous ascending or do not cover
/// `slice` exactly — partitions from [`partition`] always do.
pub fn split_rows<'a, T>(
    mut slice: &'a mut [T],
    row_len: usize,
    shards: &[Shard],
) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(shards.len());
    let mut row = 0;
    for s in shards {
        assert_eq!(s.start, row, "shards must be contiguous ascending");
        let (head, tail) = slice.split_at_mut(s.len() * row_len);
        out.push(head);
        slice = tail;
        row = s.end;
    }
    assert!(slice.is_empty(), "shards must cover the whole slice");
    out
}

/// Run `f` once per shard context on scoped worker threads and return
/// the results in context order. `f` receives `(shard_index, context)`.
///
/// With one context (or one worker producing one shard) everything runs
/// inline on the caller's thread — the sequential and parallel paths
/// share this entry point, so "1 worker" is not a special case at call
/// sites. A panicking shard is re-raised on the caller, lowest shard
/// index first, after every sibling finished (no detached threads).
pub fn map_shards<C, T, F>(ctxs: Vec<C>, f: F) -> Vec<T>
where
    C: Send,
    T: Send,
    F: Fn(usize, C) -> T + Sync,
{
    if ctxs.len() <= 1 {
        return ctxs.into_iter().enumerate().map(|(i, c)| f(i, c)).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = ctxs
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                let f = &f;
                scope.spawn(move || f(i, c))
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        results
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_rows_contiguously() {
        for n in [0usize, 1, 2, 7, 16, 1000] {
            for workers in [1usize, 2, 3, 8, 64] {
                let shards = partition(n, workers);
                if n == 0 {
                    assert!(shards.is_empty());
                    continue;
                }
                assert_eq!(shards.len(), workers.min(n));
                assert_eq!(shards[0].start, 0);
                assert_eq!(shards.last().unwrap().end, n);
                for w in shards.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                    assert!(!w[1].is_empty());
                }
                let sizes: Vec<_> = shards.iter().map(Shard::len).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "balanced: {sizes:?}");
            }
        }
    }

    #[test]
    fn split_rows_is_disjoint_and_complete() {
        let mut data: Vec<u32> = (0..24).collect();
        let shards = partition(6, 4); // 6 rows of 4 items
        let views = split_rows(&mut data, 4, &shards);
        assert_eq!(views.len(), shards.len());
        let mut flat = Vec::new();
        for (view, s) in views.into_iter().zip(&shards) {
            assert_eq!(view.len(), s.len() * 4);
            view[0] += 0; // prove mutability
            flat.extend_from_slice(view);
        }
        assert_eq!(flat, (0..24).collect::<Vec<u32>>());
    }

    #[test]
    fn map_shards_returns_results_in_shard_order() {
        let ctxs: Vec<usize> = (0..8).collect();
        let out = map_shards(ctxs, |i, c| {
            assert_eq!(i, c);
            c * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn map_shards_single_context_runs_inline() {
        let out = map_shards(vec![41], |i, c| {
            assert_eq!(i, 0);
            c + 1
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn map_shards_mutates_disjoint_windows() {
        let mut data = vec![0u64; 12];
        let shards = partition(12, 3);
        let views = split_rows(&mut data, 1, &shards);
        let ctxs: Vec<_> = views.into_iter().zip(shards.clone()).collect();
        map_shards(ctxs, |_, (view, s)| {
            for (i, v) in view.iter_mut().enumerate() {
                *v = (s.start + i) as u64;
            }
        });
        assert_eq!(data, (0..12).collect::<Vec<u64>>());
    }

    #[test]
    fn map_shards_propagates_the_lowest_shard_panic() {
        let caught = std::panic::catch_unwind(|| {
            map_shards(vec![0, 1, 2], |i, _| {
                if i >= 1 {
                    panic!("shard {i} failed");
                }
                i
            })
        });
        let msg = *caught
            .expect_err("must propagate")
            .downcast::<String>()
            .expect("panic payload");
        assert_eq!(msg, "shard 1 failed");
    }
}
