#![warn(missing_docs)]

//! Deterministic simulation substrate for the NegotiaToR reproduction.
//!
//! This crate provides the building blocks every other crate in the
//! workspace rests on:
//!
//! * [`time`] — nanosecond-resolution simulated time ([`Nanos`]) and
//!   bandwidth/byte conversion helpers.
//! * [`rng`] — a self-contained, portable xoshiro256++ PRNG
//!   ([`rng::Xoshiro256`]) so that a seed produces bit-identical experiment
//!   results on every platform.
//! * [`events`] — a deterministic discrete-event queue
//!   ([`events::EventQueue`]) with FIFO tie-breaking for simultaneous events.
//! * [`stats`] — percentiles, means, CDFs and histograms used by the
//!   metrics crate and the experiment harness.
//! * [`series`] — windowed time-series sampling (receiver-bandwidth plots).
//! * [`pool`] — a minimal ordered worker pool so the experiment harness can
//!   fan independent runs across cores.
//! * [`shard`] — contiguous row partitions + scoped fork/join for
//!   deterministic intra-run parallelism (the epoch engines' `--workers`).
//!
//! Design notes: the simulators built on top of this crate are
//! *slot-synchronous* (both architectures in the paper transmit in fixed,
//! globally synchronized timeslots), so the event queue is used for
//! irregular events (flow arrivals, link failures) while the per-slot fabric
//! work advances with plain arithmetic on [`Nanos`]. Parallelism exists on
//! two axes, both with the same guarantee — worker counts can never change
//! output bytes: [`pool`] executes many independent runs at once and
//! reassembles their outputs in order, and [`shard`] lets one run fan its
//! per-ToR phase work across workers with an order-preserving merge.

pub mod events;
pub mod pool;
pub mod rng;
pub mod series;
pub mod shard;
pub mod stats;
pub mod time;

pub use events::EventQueue;
pub use rng::Xoshiro256;
pub use series::BandwidthSeries;
pub use stats::{Cdf, Histogram, Summary};
pub use time::{Bandwidth, Nanos, GBPS};
