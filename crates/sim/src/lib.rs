#![warn(missing_docs)]

//! Deterministic simulation substrate for the NegotiaToR reproduction.
//!
//! This crate provides the building blocks every other crate in the
//! workspace rests on:
//!
//! * [`time`] — nanosecond-resolution simulated time ([`Nanos`]) and
//!   bandwidth/byte conversion helpers.
//! * [`rng`] — a self-contained, portable xoshiro256++ PRNG
//!   ([`rng::Xoshiro256`]) so that a seed produces bit-identical experiment
//!   results on every platform.
//! * [`events`] — a deterministic discrete-event queue
//!   ([`events::EventQueue`]) with FIFO tie-breaking for simultaneous events.
//! * [`stats`] — percentiles, means, CDFs and histograms used by the
//!   metrics crate and the experiment harness.
//! * [`series`] — windowed time-series sampling (receiver-bandwidth plots).
//! * [`pool`] — a minimal ordered worker pool so the experiment harness can
//!   fan independent runs across cores.
//!
//! Design notes: the simulators built on top of this crate are
//! *slot-synchronous* (both architectures in the paper transmit in fixed,
//! globally synchronized timeslots), so the event queue is used for
//! irregular events (flow arrivals, link failures) while the per-slot fabric
//! work advances with plain arithmetic on [`Nanos`]. Each simulation run is
//! single-threaded by design: reproducibility of the paper's experiments
//! trumps parallel speed, and a full 30 ms run of the 128-ToR network
//! completes in seconds. Parallelism lives one layer up — [`pool`] executes
//! many independent runs at once and reassembles their outputs in order.

pub mod events;
pub mod pool;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

pub use events::EventQueue;
pub use rng::Xoshiro256;
pub use series::BandwidthSeries;
pub use stats::{Cdf, Histogram, Summary};
pub use time::{Bandwidth, Nanos, GBPS};
