//! A minimal fixed-size worker pool for embarrassingly parallel sweeps.
//!
//! The experiment harness expands a sweep into independent, deterministic
//! runs; this module executes them across threads and hands the outputs
//! back **in submission order**, so a parallel sweep is indistinguishable
//! from a serial one. The design is deliberately tiny and dependency-free
//! (scoped threads + channels, no work stealing): workers pull the next
//! task from a shared channel, compute, and send `(index, output)` back to
//! the caller, which reassembles the slots.
//!
//! The simulators themselves stay single-threaded — reproducibility of a
//! single run is untouched; only the sweep layer above them fans out.

use std::sync::mpsc;
use std::sync::Mutex;

/// A boxed task the pool can run.
pub type Task<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Worker count matching the machine: `std::thread::available_parallelism`,
/// falling back to 1 when the platform cannot say.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `tasks` across up to `jobs` worker threads and return the outputs
/// in task order, regardless of completion order.
///
/// `jobs <= 1` (or a single task) degenerates to a plain in-order loop on
/// the calling thread — the serial and parallel paths share everything
/// else, which is what makes `--jobs N` output byte-identical to
/// `--jobs 1`. A panicking task propagates its panic to the caller once
/// the surviving workers drain.
pub fn run_ordered<'a, T: Send + 'a>(jobs: usize, tasks: Vec<Task<'a, T>>) -> Vec<T> {
    let n = tasks.len();
    if jobs <= 1 || n <= 1 {
        return tasks.into_iter().map(|task| task()).collect();
    }
    let workers = jobs.min(n);
    // Pre-load the indexed tasks; the channel then acts as the shared,
    // contention-light work queue (recv never blocks: it yields a task or
    // reports the queue empty).
    let (task_tx, task_rx) = mpsc::channel::<(usize, Task<'a, T>)>();
    for pair in tasks.into_iter().enumerate() {
        task_tx.send(pair).expect("receiver alive");
    }
    drop(task_tx);
    let task_rx = Mutex::new(task_rx);
    type Out<T> = (usize, std::thread::Result<T>);
    let (out_tx, out_rx) = mpsc::channel::<Out<T>>();
    let mut slots: Vec<Option<std::thread::Result<T>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let out_tx = out_tx.clone();
            let task_rx = &task_rx;
            scope.spawn(move || loop {
                let task = match task_rx.lock().expect("queue lock").recv() {
                    Ok(task) => task,
                    Err(_) => break, // queue drained
                };
                let (index, run) = task;
                // Catch panics so the caller can re-raise the original
                // payload (of the lowest-indexed failing task) instead of
                // the scope's generic "a scoped thread panicked".
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                // Errors mean the collector hung up; stop quietly.
                if out_tx.send((index, result)).is_err() {
                    break;
                }
            });
        }
        drop(out_tx);
        for (index, value) in out_rx {
            slots[index] = Some(value);
        }
    });
    slots
        .into_iter()
        .map(|slot| match slot.expect("every task delivered an output") {
            Ok(value) => value,
            Err(payload) => std::panic::resume_unwind(payload),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed<'a, T: Send>(fns: Vec<impl FnOnce() -> T + Send + 'a>) -> Vec<Task<'a, T>> {
        fns.into_iter()
            .map(|f| Box::new(f) as Task<'a, T>)
            .collect()
    }

    #[test]
    fn outputs_follow_submission_order() {
        // Later tasks finish first (earlier ones sleep); order must hold.
        let tasks: Vec<Task<u64>> = (0..16u64)
            .map(|i| {
                Box::new(move || {
                    std::thread::sleep(std::time::Duration::from_millis(16 - i));
                    i * i
                }) as Task<u64>
            })
            .collect();
        let out = run_ordered(4, tasks);
        assert_eq!(out, (0..16u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let make = || {
            boxed(
                (0..32u64)
                    .map(|i| move || i.wrapping_mul(0x9E3779B9))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run_ordered(1, make()), run_ordered(8, make()));
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(run_ordered::<u32>(8, Vec::new()), Vec::<u32>::new());
        assert_eq!(run_ordered(8, boxed(vec![|| 7])), vec![7]);
    }

    #[test]
    fn more_jobs_than_tasks() {
        assert_eq!(run_ordered(64, boxed(vec![|| 1, || 2])), vec![1, 2]);
    }

    #[test]
    fn borrows_from_the_caller() {
        // Non-'static tasks: scoped threads let tasks borrow locals.
        let base = [10u64, 20, 30];
        let tasks: Vec<Task<u64>> = base
            .iter()
            .map(|v| Box::new(move || v + 1) as Task<u64>)
            .collect();
        assert_eq!(run_ordered(2, tasks), vec![11, 21, 31]);
    }

    #[test]
    #[should_panic(expected = "task 3 exploded")]
    fn worker_panics_propagate() {
        let tasks: Vec<Task<u64>> = (0..8u64)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("task 3 exploded");
                    }
                    i
                }) as Task<u64>
            })
            .collect();
        run_ordered(4, tasks);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
