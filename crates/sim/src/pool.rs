//! A minimal fixed-size worker pool for embarrassingly parallel sweeps.
//!
//! The experiment harness expands a sweep into independent, deterministic
//! runs; this module executes them across threads and hands the outputs
//! back **in submission order**, so a parallel sweep is indistinguishable
//! from a serial one. The design is deliberately tiny and dependency-free
//! (scoped threads + channels, no work stealing): workers pull the next
//! task from a shared channel, compute, and send `(index, output)` back to
//! the caller, which reassembles the slots.
//!
//! Two execution styles share the worker discipline:
//!
//! * [`run_ordered`] — the batch path: a fixed task list in, outputs in
//!   submission order out (the sweep engine's byte-identity rests on it).
//! * [`WorkerPool`] — the serving path: a long-lived pool that accepts
//!   prioritized jobs over time, hands back a typed [`JobHandle`] per
//!   submission (wait/poll/cancel), and drains everything already accepted
//!   on shutdown. The scenario-serving daemon enqueues submissions here.
//!
//! The simulators themselves stay single-threaded — reproducibility of a
//! single run is untouched; only the layer above them fans out.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};

/// A boxed task the pool can run.
pub type Task<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Worker count matching the machine: `std::thread::available_parallelism`,
/// falling back to 1 when the platform cannot say.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `tasks` across up to `jobs` worker threads and return the outputs
/// in task order, regardless of completion order.
///
/// `jobs <= 1` (or a single task) degenerates to a plain in-order loop on
/// the calling thread — the serial and parallel paths share everything
/// else, which is what makes `--jobs N` output byte-identical to
/// `--jobs 1`. A panicking task propagates its panic to the caller once
/// the surviving workers drain.
pub fn run_ordered<'a, T: Send + 'a>(jobs: usize, tasks: Vec<Task<'a, T>>) -> Vec<T> {
    let n = tasks.len();
    if jobs <= 1 || n <= 1 {
        return tasks.into_iter().map(|task| task()).collect();
    }
    let workers = jobs.min(n);
    // Pre-load the indexed tasks; the channel then acts as the shared,
    // contention-light work queue (recv never blocks: it yields a task or
    // reports the queue empty).
    let (task_tx, task_rx) = mpsc::channel::<(usize, Task<'a, T>)>();
    for pair in tasks.into_iter().enumerate() {
        task_tx.send(pair).expect("receiver alive");
    }
    drop(task_tx);
    let task_rx = Mutex::new(task_rx);
    type Out<T> = (usize, std::thread::Result<T>);
    let (out_tx, out_rx) = mpsc::channel::<Out<T>>();
    let mut slots: Vec<Option<std::thread::Result<T>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let out_tx = out_tx.clone();
            let task_rx = &task_rx;
            scope.spawn(move || loop {
                let task = match task_rx.lock().expect("queue lock").recv() {
                    Ok(task) => task,
                    Err(_) => break, // queue drained
                };
                let (index, run) = task;
                // Catch panics so the caller can re-raise the original
                // payload (of the lowest-indexed failing task) instead of
                // the scope's generic "a scoped thread panicked".
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                // Errors mean the collector hung up; stop quietly.
                if out_tx.send((index, result)).is_err() {
                    break;
                }
            });
        }
        drop(out_tx);
        for (index, value) in out_rx {
            slots[index] = Some(value);
        }
    });
    slots
        .into_iter()
        .map(|slot| match slot.expect("every task delivered an output") {
            Ok(value) => value,
            Err(payload) => std::panic::resume_unwind(payload),
        })
        .collect()
}

// ---------------------------------------------------------------------
// The long-lived, prioritized pool behind the serving daemon
// ---------------------------------------------------------------------

/// Where a submitted job currently stands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the priority queue.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; the output is (or was) available on the handle.
    Done,
    /// Cancelled while still queued — it never ran.
    Cancelled,
    /// The job panicked; the payload's message.
    Failed(String),
}

struct HandleShared<T> {
    state: Mutex<(JobStatus, Option<T>)>,
    done: Condvar,
}

/// Typed handle to one submitted job: poll its status, block for its
/// output, or cancel it while it is still queued.
pub struct JobHandle<T> {
    shared: Arc<HandleShared<T>>,
}

impl<T> JobHandle<T> {
    /// Current status, without blocking.
    pub fn status(&self) -> JobStatus {
        self.shared.state.lock().expect("job state").0.clone()
    }

    /// Cancel the job if it has not started. Returns `true` when the
    /// cancellation won (the job will never run); `false` when the job is
    /// already running or finished — running jobs always complete, so a
    /// partially-computed result can never be observed.
    ///
    /// Atomic with the worker's own `Queued → Running` transition: both
    /// happen under the handle's state lock, so `true` really does mean
    /// the job cannot run anymore.
    pub fn cancel(&self) -> bool {
        let mut state = self.shared.state.lock().expect("job state");
        match state.0 {
            JobStatus::Queued => {
                state.0 = JobStatus::Cancelled;
                self.shared.done.notify_all();
                true
            }
            JobStatus::Cancelled => true,
            _ => false,
        }
    }

    /// Block until the job leaves the queue-or-running states, then take
    /// its output: `Some(value)` for a completed job, `None` when it was
    /// cancelled, failed, or the output was already taken.
    pub fn wait(&self) -> Option<T> {
        let mut state = self.shared.state.lock().expect("job state");
        while matches!(state.0, JobStatus::Queued | JobStatus::Running) {
            state = self.shared.done.wait(state).expect("job state");
        }
        state.1.take()
    }
}

/// One queued unit of work, ordered by `(priority desc, sequence asc)` —
/// higher priority first, FIFO within a priority level.
struct Pending {
    priority: i64,
    seq: u64,
    work: Box<dyn FnOnce() + Send>,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: greatest = highest priority, and among
        // equals the *lowest* sequence number (earliest submission).
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct PoolState {
    heap: BinaryHeap<Pending>,
    next_seq: u64,
    shutting_down: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    available: Condvar,
    counters: PoolCounters,
}

/// Count-based lifecycle totals (no wall clock — `sim` is a
/// deterministic zone; utilization and rates are derived by the
/// observer, e.g. the daemon's `/metrics` endpoint).
#[derive(Debug, Default)]
struct PoolCounters {
    submitted: AtomicU64,
    running: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
}

/// A point-in-time view of a [`WorkerPool`]'s queue and lifetime totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Worker threads the pool was built with.
    pub workers: usize,
    /// Jobs waiting in the priority queue right now.
    pub queued: usize,
    /// Jobs executing right now (gauge, `<= workers`).
    pub running: u64,
    /// Jobs accepted since the pool started.
    pub submitted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs that panicked.
    pub failed: u64,
    /// Jobs cancelled while still queued (they never ran).
    pub cancelled: u64,
}

/// A long-lived pool of `jobs` workers draining a prioritized queue.
///
/// Unlike [`run_ordered`] the pool outlives any one batch: jobs arrive
/// over time (from concurrent submitters), each returns a [`JobHandle`],
/// and [`WorkerPool::shutdown`] stops intake while **draining** everything
/// already accepted — no accepted job is ever dropped half-done.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    worker_count: usize,
}

impl WorkerPool {
    /// Spawn `jobs` workers (at least one).
    pub fn new(jobs: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                heap: BinaryHeap::new(),
                next_seq: 0,
                shutting_down: false,
            }),
            available: Condvar::new(),
            counters: PoolCounters::default(),
        });
        let worker_count = jobs.max(1);
        let workers = (0..worker_count)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            worker_count,
        }
    }

    /// Submit a job at `priority` (higher runs earlier; FIFO within a
    /// level). Returns `None` once [`WorkerPool::shutdown`] has begun —
    /// the caller must surface the rejection, never queue silently.
    pub fn submit<T, F>(&self, priority: i64, job: F) -> Option<JobHandle<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let handle_shared = Arc::new(HandleShared {
            state: Mutex::new((JobStatus::Queued, None)),
            done: Condvar::new(),
        });
        let work = {
            let shared = Arc::clone(&handle_shared);
            let pool = Arc::clone(&self.shared);
            Box::new(move || {
                {
                    // The cancel check and the Queued → Running move are
                    // one critical section — a cancel that returned true
                    // can never race this into running anyway.
                    let mut state = shared.state.lock().expect("job state");
                    if state.0 != JobStatus::Queued {
                        // Cancelled while waiting in the heap.
                        pool.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    state.0 = JobStatus::Running;
                }
                pool.counters.running.fetch_add(1, Ordering::Relaxed);
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                pool.counters.running.fetch_sub(1, Ordering::Relaxed);
                match outcome {
                    Ok(value) => {
                        pool.counters.completed.fetch_add(1, Ordering::Relaxed);
                        finish(&shared, JobStatus::Done, Some(value))
                    }
                    Err(payload) => {
                        pool.counters.failed.fetch_add(1, Ordering::Relaxed);
                        finish(
                            &shared,
                            JobStatus::Failed(panic_msg(payload.as_ref())),
                            None,
                        )
                    }
                }
            })
        };
        {
            let mut state = self.shared.state.lock().expect("pool state");
            if state.shutting_down {
                return None;
            }
            let seq = state.next_seq;
            state.next_seq += 1;
            state.heap.push(Pending {
                priority,
                seq,
                work,
            });
        }
        self.shared
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        self.shared.available.notify_one();
        Some(JobHandle {
            shared: handle_shared,
        })
    }

    /// Number of jobs still waiting in the queue (not running).
    pub fn queued(&self) -> usize {
        self.shared.state.lock().expect("pool state").heap.len()
    }

    /// Point-in-time queue depth and lifetime totals, for observers (the
    /// daemon's `/metrics` plane). Counters are relaxed atomics: a
    /// snapshot taken mid-transition may momentarily disagree by one
    /// between fields, which is fine for monitoring.
    pub fn snapshot(&self) -> PoolSnapshot {
        let c = &self.shared.counters;
        PoolSnapshot {
            workers: self.worker_count,
            queued: self.queued(),
            running: c.running.load(Ordering::Relaxed),
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting submissions, drain every job already accepted, and
    /// join the workers. Idempotent.
    pub fn shutdown(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state");
            state.shutting_down = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let pending = {
            let mut state = shared.state.lock().expect("pool state");
            loop {
                if let Some(pending) = state.heap.pop() {
                    break pending;
                }
                if state.shutting_down {
                    return;
                }
                state = shared.available.wait(state).expect("pool state");
            }
        };
        // Cancelled-in-queue jobs mark their handle and return without
        // running; everything else runs to completion even during
        // shutdown (the drain guarantee).
        (pending.work)();
    }
}

fn finish<T>(shared: &HandleShared<T>, status: JobStatus, value: Option<T>) {
    let mut state = shared.state.lock().expect("job state");
    *state = (status, value);
    shared.done.notify_all();
}

fn panic_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed<'a, T: Send>(fns: Vec<impl FnOnce() -> T + Send + 'a>) -> Vec<Task<'a, T>> {
        fns.into_iter()
            .map(|f| Box::new(f) as Task<'a, T>)
            .collect()
    }

    #[test]
    fn outputs_follow_submission_order() {
        // Later tasks finish first (earlier ones sleep); order must hold.
        let tasks: Vec<Task<u64>> = (0..16u64)
            .map(|i| {
                Box::new(move || {
                    std::thread::sleep(std::time::Duration::from_millis(16 - i));
                    i * i
                }) as Task<u64>
            })
            .collect();
        let out = run_ordered(4, tasks);
        assert_eq!(out, (0..16u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let make = || {
            boxed(
                (0..32u64)
                    .map(|i| move || i.wrapping_mul(0x9E3779B9))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run_ordered(1, make()), run_ordered(8, make()));
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(run_ordered::<u32>(8, Vec::new()), Vec::<u32>::new());
        assert_eq!(run_ordered(8, boxed(vec![|| 7])), vec![7]);
    }

    #[test]
    fn more_jobs_than_tasks() {
        assert_eq!(run_ordered(64, boxed(vec![|| 1, || 2])), vec![1, 2]);
    }

    #[test]
    fn borrows_from_the_caller() {
        // Non-'static tasks: scoped threads let tasks borrow locals.
        let base = [10u64, 20, 30];
        let tasks: Vec<Task<u64>> = base
            .iter()
            .map(|v| Box::new(move || v + 1) as Task<u64>)
            .collect();
        assert_eq!(run_ordered(2, tasks), vec![11, 21, 31]);
    }

    #[test]
    #[should_panic(expected = "task 3 exploded")]
    fn worker_panics_propagate() {
        let tasks: Vec<Task<u64>> = (0..8u64)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("task 3 exploded");
                    }
                    i
                }) as Task<u64>
            })
            .collect();
        run_ordered(4, tasks);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn worker_pool_runs_jobs_and_reports_done() {
        let pool = WorkerPool::new(2);
        let handles: Vec<_> = (0..8u64)
            .map(|i| pool.submit(0, move || i * 3).expect("accepting"))
            .collect();
        for (i, h) in handles.iter().enumerate() {
            assert_eq!(h.wait(), Some(i as u64 * 3));
            assert_eq!(h.status(), JobStatus::Done);
        }
    }

    #[test]
    fn worker_pool_priorities_order_the_queue() {
        use std::sync::mpsc;
        // One worker, blocked on a gate so the queue builds up; then the
        // queued jobs must drain highest-priority-first, FIFO within ties.
        let pool = WorkerPool::new(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let blocker = pool
            .submit(100, move || {
                gate_rx.recv().expect("gate");
            })
            .expect("accepting");
        let (order_tx, order_rx) = mpsc::channel::<&'static str>();
        let mut handles = Vec::new();
        for (priority, tag) in [(0, "low-a"), (5, "high"), (0, "low-b"), (2, "mid")] {
            let tx = order_tx.clone();
            handles.push(
                pool.submit(priority, move || tx.send(tag).expect("collector"))
                    .expect("accepting"),
            );
        }
        gate_tx.send(()).expect("worker waiting");
        for h in &handles {
            h.wait();
        }
        blocker.wait();
        let order: Vec<_> = order_rx.try_iter().collect();
        assert_eq!(order, vec!["high", "mid", "low-a", "low-b"]);
    }

    #[test]
    fn worker_pool_cancel_skips_queued_jobs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::mpsc;
        let pool = WorkerPool::new(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let blocker = pool
            .submit(0, move || {
                gate_rx.recv().expect("gate");
            })
            .expect("accepting");
        let ran = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&ran);
        let victim = pool
            .submit(0, move || {
                counter.fetch_add(1, Ordering::SeqCst);
            })
            .expect("accepting");
        assert!(victim.cancel(), "still queued, so cancellation wins");
        gate_tx.send(()).expect("worker waiting");
        assert_eq!(victim.wait(), None);
        assert_eq!(victim.status(), JobStatus::Cancelled);
        blocker.wait();
        assert_eq!(ran.load(Ordering::SeqCst), 0, "cancelled job never ran");
        // A finished job can no longer be cancelled.
        let done = pool.submit(0, || 1u8).expect("accepting");
        assert_eq!(done.wait(), Some(1));
        assert!(!done.cancel());
    }

    #[test]
    fn worker_pool_shutdown_drains_and_rejects() {
        let mut pool = WorkerPool::new(2);
        let handles: Vec<_> = (0..6u64)
            .map(|i| {
                pool.submit(0, move || {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    i
                })
                .expect("accepting")
            })
            .collect();
        pool.shutdown();
        // Every job accepted before shutdown completed (the drain).
        for (i, h) in handles.iter().enumerate() {
            assert_eq!(h.status(), JobStatus::Done);
            assert_eq!(h.wait(), Some(i as u64));
        }
        // New submissions are refused, not silently dropped.
        assert!(pool.submit(0, || 7u64).is_none());
    }

    #[test]
    fn worker_pool_snapshot_tracks_lifecycle() {
        let mut pool = WorkerPool::new(2);
        let fresh = pool.snapshot();
        assert_eq!(fresh.workers, 2);
        assert_eq!((fresh.submitted, fresh.completed, fresh.running), (0, 0, 0));
        let handles: Vec<_> = (0..4u64)
            .map(|i| pool.submit(0, move || i).expect("accepting"))
            .collect();
        for h in &handles {
            h.wait();
        }
        let bad = pool
            .submit(0, || -> u64 { panic!("boom") })
            .expect("accepting");
        bad.wait();
        pool.shutdown();
        let snap = pool.snapshot();
        assert_eq!(snap.submitted, 5);
        assert_eq!(snap.completed, 4);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.running, 0);
        assert_eq!(snap.queued, 0);
    }

    #[test]
    fn worker_pool_snapshot_counts_cancellations() {
        use std::sync::mpsc;
        let mut pool = WorkerPool::new(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let blocker = pool
            .submit(10, move || {
                gate_rx.recv().expect("gate");
            })
            .expect("accepting");
        let victim = pool.submit(0, || ()).expect("accepting");
        assert!(victim.cancel());
        gate_tx.send(()).expect("worker waiting");
        blocker.wait();
        pool.shutdown();
        let snap = pool.snapshot();
        assert_eq!(snap.cancelled, 1);
        assert_eq!(snap.completed, 1, "only the blocker ran");
    }

    #[test]
    fn worker_pool_job_panic_is_contained() {
        let pool = WorkerPool::new(1);
        let bad = pool
            .submit(0, || -> u64 { panic!("scenario exploded") })
            .expect("accepting");
        assert_eq!(bad.wait(), None);
        assert_eq!(
            bad.status(),
            JobStatus::Failed("scenario exploded".to_string())
        );
        // The worker survives the panic and keeps serving.
        let ok = pool.submit(0, || 9u64).expect("accepting");
        assert_eq!(ok.wait(), Some(9));
    }
}
