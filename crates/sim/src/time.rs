//! Simulated time and bandwidth arithmetic.
//!
//! All engines in this workspace keep time as plain `u64` nanoseconds.
//! [`Nanos`] is a transparent alias rather than a newtype: the simulators do
//! heavy arithmetic on timestamps (slot indices, epoch offsets, modular
//! rotation schedules) and a newtype would force a wrapper method on every
//! expression without catching any real bug class — both operands are always
//! nanoseconds here. Bandwidth, where unit confusion *is* plausible
//! (bits vs bytes, Gbps vs bytes/ns), gets a real type: [`Bandwidth`].

/// Simulated time in nanoseconds since the start of the run.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICROS: Nanos = 1_000;

/// One millisecond in [`Nanos`].
pub const MILLIS: Nanos = 1_000_000;

/// Link or aggregate bandwidth. Stored in bits per second to keep the
/// paper's numbers (100 Gbps per port, 400 Gbps per ToR) exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth {
    bits_per_sec: u64,
}

/// 1 Gbps, the unit the paper quotes all rates in.
pub const GBPS: Bandwidth = Bandwidth::from_gbps(1);

impl Bandwidth {
    /// Bandwidth from gigabits per second.
    pub const fn from_gbps(gbps: u64) -> Self {
        Bandwidth {
            bits_per_sec: gbps * 1_000_000_000,
        }
    }

    /// Bandwidth from bits per second.
    pub const fn from_bps(bits_per_sec: u64) -> Self {
        Bandwidth { bits_per_sec }
    }

    /// Raw bits per second.
    pub const fn bps(self) -> u64 {
        self.bits_per_sec
    }

    /// Gigabits per second as a float (for reports).
    pub fn gbps(self) -> f64 {
        self.bits_per_sec as f64 / 1e9
    }

    /// How many whole bytes cross a link of this bandwidth in `dur` ns.
    ///
    /// 100 Gbps = 12.5 bytes/ns, so a 50 ns predefined-phase data window
    /// carries 625 B and a 90 ns scheduled slot carries 1125 B — the paper's
    /// packet sizes fall out of this arithmetic exactly.
    pub const fn bytes_in(self, dur: Nanos) -> u64 {
        // bits = bps * ns / 1e9; bytes = bits / 8.
        self.bits_per_sec * dur / 8_000_000_000
    }

    /// Time needed to serialize `bytes` onto a link of this bandwidth,
    /// rounded up to the next nanosecond.
    pub const fn transmit_time(self, bytes: u64) -> Nanos {
        let bits = bytes * 8;
        // ceil(bits * 1e9 / bps)
        (bits * 1_000_000_000).div_ceil(self.bits_per_sec)
    }

    /// Scale by an integer factor (e.g. per-port rate × port count).
    pub const fn scale(self, factor: u64) -> Self {
        Bandwidth {
            bits_per_sec: self.bits_per_sec * factor,
        }
    }
}

impl core::fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.1} Gbps", self.gbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_packet_sizes_fall_out_of_bandwidth_math() {
        let port = Bandwidth::from_gbps(100);
        // 50 ns data window in the predefined phase: 30 B messages + 595 B payload.
        assert_eq!(port.bytes_in(50), 625);
        // 90 ns scheduled slot: 10 B header + 1115 B payload.
        assert_eq!(port.bytes_in(90), 1125);
    }

    #[test]
    fn transmit_time_rounds_up() {
        let port = Bandwidth::from_gbps(100);
        assert_eq!(port.transmit_time(625), 50);
        assert_eq!(port.transmit_time(626), 51); // 50.08 ns rounds up
        assert_eq!(port.transmit_time(0), 0);
    }

    #[test]
    fn bytes_in_and_transmit_time_are_inverse_on_whole_bytes() {
        let bw = Bandwidth::from_gbps(100);
        for dur in [1u64, 8, 50, 90, 1000] {
            let b = bw.bytes_in(dur);
            assert!(bw.transmit_time(b) <= dur);
        }
    }

    #[test]
    fn display_and_units() {
        assert_eq!(Bandwidth::from_gbps(400).to_string(), "400.0 Gbps");
        assert_eq!(GBPS.bps(), 1_000_000_000);
        assert_eq!(Bandwidth::from_gbps(100).scale(8).gbps(), 800.0);
    }
}
