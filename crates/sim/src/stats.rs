//! Statistics used by the metrics crate and the experiment harness:
//! running summaries, exact percentiles, CDFs and fixed-width histograms.

/// Running summary of a sample stream: count, mean, min, max.
///
/// Values are `f64`; the FCT recorder feeds it nanoseconds, the goodput
/// recorder normalized fractions.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Merge another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact empirical distribution: stores every sample, answers percentile
/// and CDF queries. Fine for this workload scale (a few million flows).
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: bool,
}

/// Two distributions are equal when they hold the same multiset of
/// samples; insertion order and lazy-sort state don't matter. Used by the
/// determinism tests to compare whole reports across runs.
impl PartialEq for Cdf {
    fn eq(&self, other: &Self) -> bool {
        if self.samples.len() != other.samples.len() {
            return false;
        }
        if self.sorted && other.sorted {
            return self.samples == other.samples;
        }
        let sort = |samples: &[f64]| {
            let mut v = samples.to_vec();
            v.sort_unstable_by(f64::total_cmp);
            v
        };
        sort(&self.samples) == sort(&other.samples)
    }
}

impl Cdf {
    /// Empty distribution.
    pub fn new() -> Self {
        Cdf {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
    }

    /// `p`-th percentile with `p` in `[0, 100]`, nearest-rank method
    /// (the convention DCN papers use for "99p FCT"). `None` when empty.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        let idx = rank.clamp(1, n) - 1;
        Some(self.samples[idx])
    }

    /// Fraction of samples `<= x`.
    pub fn fraction_below(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let count = self.samples.partition_point(|&s| s <= x);
        count as f64 / self.samples.len() as f64
    }

    /// Mean of all samples; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Evenly spaced (value, cumulative-fraction) points for plotting,
    /// at most `points` of them.
    pub fn curve(&mut self, points: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() || points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let step = (n.max(points) / points).max(1);
        let mut out = Vec::with_capacity(points + 1);
        let mut i = step - 1;
        while i < n {
            out.push((self.samples[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if out.last().map(|&(_, f)| f) != Some(1.0) {
            out.push((self.samples[n - 1], 1.0));
        }
        out
    }
}

/// Fixed-width histogram over `[lo, hi)` with saturating edge buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    width: f64,
    buckets: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Histogram of `n` equal buckets spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(hi > lo && n > 0, "invalid histogram bounds");
        Histogram {
            lo,
            width: (hi - lo) / n as f64,
            buckets: vec![0; n],
            total: 0,
        }
    }

    /// Record one observation (clamped into the edge buckets).
    pub fn record(&mut self, value: f64) {
        let idx = ((value - self.lo) / self.width).floor();
        let idx = (idx.max(0.0) as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.total += 1;
    }

    /// Bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Lower edge of bucket `i`.
    pub fn edge(&self, i: usize) -> f64 {
        self.lo + self.width * i as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_tracks_moments() {
        let mut s = Summary::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        assert_eq!(s.sum(), 10.0);
    }

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn summary_merge() {
        let mut a = Summary::new();
        a.record(1.0);
        let mut b = Summary::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 2.0);
        assert_eq!(a.max(), Some(3.0));
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut c = Cdf::new();
        for v in 1..=100 {
            c.record(v as f64);
        }
        assert_eq!(c.percentile(99.0), Some(99.0));
        assert_eq!(c.percentile(50.0), Some(50.0));
        assert_eq!(c.percentile(100.0), Some(100.0));
        assert_eq!(c.percentile(0.0), Some(1.0));
    }

    #[test]
    fn percentile_of_singleton() {
        let mut c = Cdf::new();
        c.record(7.5);
        assert_eq!(c.percentile(99.0), Some(7.5));
        assert_eq!(c.percentile(1.0), Some(7.5));
    }

    #[test]
    fn empty_cdf() {
        let mut c = Cdf::new();
        assert_eq!(c.percentile(99.0), None);
        assert_eq!(c.fraction_below(10.0), 0.0);
        assert!(c.curve(10).is_empty());
    }

    #[test]
    fn fraction_below() {
        let mut c = Cdf::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            c.record(v);
        }
        assert_eq!(c.fraction_below(2.0), 0.5);
        assert_eq!(c.fraction_below(0.5), 0.0);
        assert_eq!(c.fraction_below(4.0), 1.0);
    }

    #[test]
    fn curve_is_monotone_and_ends_at_one() {
        let mut c = Cdf::new();
        for v in 0..1000 {
            c.record((v % 37) as f64);
        }
        let pts = c.curve(20);
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn histogram_buckets_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(9.99);
        h.record(-5.0); // clamps to bucket 0
        h.record(50.0); // clamps to last bucket
        assert_eq!(h.total(), 4);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[9], 2);
        assert_eq!(h.edge(1), 1.0);
    }
}
