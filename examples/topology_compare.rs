//! Topology comparison: the same NegotiaToR configuration on the
//! parallel-network topology (high port-count AWGRs, any port reaches any
//! ToR) versus thin-clos (low port-count AWGRs, one path per pair).
//!
//! The parallel network can hand a hot destination several ports at once;
//! thin-clos caps each pair at one port, which shows up as slightly lower
//! goodput under elephant-heavy load — the paper's Figure 9 observation
//! that "performance on the thin-clos topology is marginally lower due to
//! its limited connectivity".
//!
//! ```text
//! cargo run --release --example topology_compare
//! ```

use negotiator_dcn::prelude::*;

fn main() {
    let net = NetworkConfig::paper_default();
    let duration = 2_000_000;
    println!("load   topology   mice_p99_us  goodput  match_ratio");
    for load in [0.25, 0.5, 1.0] {
        let trace = PoissonWorkload::new(WorkloadSpec {
            dist: FlowSizeDist::hadoop(),
            load,
            n_tors: net.n_tors,
            host_bps: net.host_bandwidth.bps(),
        })
        .generate(duration, 7);
        for kind in [TopologyKind::Parallel, TopologyKind::ThinClos] {
            let mut sim = NegotiatorSim::new(NegotiatorConfig::paper_default(net.clone()), kind);
            let mut report = sim.run(&trace, duration);
            println!(
                "{:>4.0}%  {:<9}  {:>11.1}  {:>7.3}  {:>11.3}",
                load * 100.0,
                kind.label(),
                report.mice.p99_ns() / 1e3,
                report.goodput.normalized(),
                sim.match_recorder().overall_ratio().unwrap_or(0.0),
            );
        }
    }
    println!("\nBoth topologies share the same predefined phase (16 x 60 ns),");
    println!("so mice FCT is nearly identical; the goodput gap is the");
    println!("single-path-per-pair constraint of thin-clos.");
}
