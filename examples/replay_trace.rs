//! Replay a custom flow trace through both architectures.
//!
//! Takes an optional path to a TSV trace (`src dst bytes arrival_ns` per
//! line); without one, it synthesizes a small demo trace, saves it next to
//! the target dir, and replays that — so the example is self-contained.
//!
//! ```text
//! cargo run --release --example replay_trace [trace.tsv]
//! ```

use negotiator_dcn::prelude::*;
use workload::{load_trace, save_trace};

fn main() {
    let net = NetworkConfig::paper_default();
    let trace = match std::env::args().nth(1) {
        Some(path) => load_trace(&path).expect("readable, well-formed trace"),
        None => {
            let demo = PoissonWorkload::new(WorkloadSpec {
                dist: FlowSizeDist::google(),
                load: 0.3,
                n_tors: net.n_tors,
                host_bps: net.host_bandwidth.bps(),
            })
            .generate(500_000, 7);
            let path = std::env::temp_dir().join("negotiator_demo_trace.tsv");
            save_trace(&demo, &path).expect("writable temp dir");
            println!("no trace given; wrote demo trace to {}", path.display());
            demo
        }
    };
    let horizon = trace
        .flows()
        .last()
        .map(|f| f.arrival + 2_000_000)
        .unwrap_or(1_000_000);
    println!(
        "replaying {} flows ({:.2} MB) on both architectures…\n",
        trace.len(),
        trace.total_bytes() as f64 / 1e6
    );

    let mut nego = NegotiatorSim::new(
        NegotiatorConfig::paper_default(net.clone()),
        TopologyKind::Parallel,
    );
    let mut rn = nego.run(&trace, horizon);
    println!(
        "NegotiaToR : mice p99 {:>8.1} us, completed {}/{}, goodput {:.3}",
        rn.mice.p99_ns() / 1e3,
        rn.all.completed,
        rn.all.total,
        rn.goodput.normalized()
    );

    let mut oblv = ObliviousSim::new(ObliviousConfig::paper_default(net), TopologyKind::ThinClos);
    let mut ro = oblv.run(&trace, horizon);
    println!(
        "oblivious  : mice p99 {:>8.1} us, completed {}/{}, goodput {:.3}",
        ro.mice.p99_ns() / 1e3,
        ro.all.completed,
        ro.all.total,
        ro.goodput.normalized()
    );
}
