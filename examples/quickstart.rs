//! Quickstart: simulate NegotiaToR on the paper's 128-ToR parallel-network
//! fabric under the Hadoop workload at 50% load, and print the headline
//! metrics (99p mice FCT, goodput).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use negotiator_dcn::prelude::*;

fn main() {
    // The paper's evaluation fabric (§4.1): 128 ToRs × 8 × 100 Gbps
    // uplinks (2× speedup over the 400 Gbps host aggregate), 2 µs one-way
    // propagation delay.
    let net = NetworkConfig::paper_default();

    // Poisson flow arrivals, sizes drawn from the Meta Hadoop trace CDF,
    // offered load 50% of the host aggregate.
    let duration = 2_000_000; // 2 ms of simulated time
    let trace = PoissonWorkload::new(WorkloadSpec {
        dist: FlowSizeDist::hadoop(),
        load: 0.5,
        n_tors: net.n_tors,
        host_bps: net.host_bandwidth.bps(),
    })
    .generate(duration, 42);
    println!(
        "workload: {} flows, {:.1} MB total, {} mice",
        trace.len(),
        trace.total_bytes() as f64 / 1e6,
        trace.mice_count()
    );

    // NegotiaToR with the paper's defaults: 3.66 µs epochs, piggybacking
    // and priority queues on.
    let cfg = NegotiatorConfig::paper_default(net.clone());
    let mut sim = NegotiatorSim::new(cfg, TopologyKind::Parallel);
    let mut report = sim.run(&trace, duration);

    println!("epoch length: {} ns", sim.epoch_len());
    println!(
        "mice FCT: p99 {:.1} us, mean {:.1} us ({} of {} mice completed)",
        report.mice.p99_ns() / 1e3,
        report.mice.mean_ns() / 1e3,
        report.mice.completed,
        report.mice.total
    );
    println!(
        "goodput: {:.1} Gbps per ToR = {:.1}% of the host aggregate",
        report.goodput.per_tor_gbps(),
        report.goodput.normalized() * 100.0
    );
    println!(
        "match ratio: {:.3} (theory at this scale: {:.3})",
        sim.match_recorder().overall_ratio().unwrap_or(0.0),
        negotiator_dcn::negotiator::theory::expected_match_efficiency(net.n_tors)
    );
}
