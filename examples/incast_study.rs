//! Incast study: how fast does each architecture absorb a many-to-one
//! burst of latency-critical 1 KB flows? Reproduces the core of the
//! paper's Figure 7(a) story: NegotiaToR's piggybacked predefined phase
//! gives every sender a guaranteed packet per epoch, so finish time is
//! flat in the incast degree, while the traffic-oblivious design pays the
//! two-hop relay detour.
//!
//! ```text
//! cargo run --release --example incast_study
//! ```

use metrics::RunReport;
use negotiator_dcn::prelude::*;
use workload::IncastWorkload;

fn main() {
    let net = NetworkConfig::paper_default();
    let horizon = 2_000_000;
    println!("degree  negotiator_us  oblivious_us");
    for degree in [1usize, 5, 10, 20, 30, 40, 50] {
        let trace = IncastWorkload {
            degree,
            flow_bytes: 1_000,
            n_tors: net.n_tors,
            start: 10_000,
        }
        .generate(degree as u64); // different burst placement per degree

        let mut nego = NegotiatorSim::new(
            NegotiatorConfig::paper_default(net.clone()),
            TopologyKind::Parallel,
        );
        nego.run(&trace, horizon);
        let n_finish = RunReport::burst_finish_time(&trace, nego.tracker())
            .expect("negotiator must complete the incast");

        let mut oblv = ObliviousSim::new(
            ObliviousConfig::paper_default(net.clone()),
            TopologyKind::ThinClos,
        );
        oblv.run(&trace, horizon);
        let o_finish = RunReport::burst_finish_time(&trace, oblv.tracker())
            .expect("oblivious must complete the incast");

        println!(
            "{degree:>6}  {:>13.2}  {:>12.2}",
            n_finish as f64 / 1e3,
            o_finish as f64 / 1e3
        );
    }
    println!("\nNegotiaToR stays flat: the predefined phase guarantees every");
    println!("sender one piggybacked packet per 3.66 us epoch, bypassing the");
    println!("scheduling delay no matter how many senders burst at once.");
}
