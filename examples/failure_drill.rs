//! Failure drill: inject simultaneous optical-link failures mid-run,
//! watch delivered bandwidth degrade, then repair and watch it recover —
//! the §3.6.1/§4.3 fault-tolerance machinery in action.
//!
//! ToRs detect the failures from silent predefined-phase slots (every ToR
//! sends dummy/feedback messages even with nothing to schedule), broadcast
//! the detections, and exclude the affected links from GRANT/ACCEPT; once
//! dummies flow again the links are re-admitted.
//!
//! ```text
//! cargo run --release --example failure_drill
//! ```

use negotiator::FailureAction;
use negotiator::SimOptions;
use negotiator_dcn::prelude::*;

fn main() {
    let net = NetworkConfig::paper_default();
    let duration = 3_000_000;
    let fail_at = 1_000_000;
    let repair_at = 2_000_000;
    let trace = PoissonWorkload::new(WorkloadSpec {
        dist: FlowSizeDist::hadoop(),
        load: 1.0,
        n_tors: net.n_tors,
        host_bps: net.host_bandwidth.bps(),
    })
    .generate(duration, 99);

    for ratio in [0.02, 0.05, 0.10] {
        let mut sim = NegotiatorSim::with_options(
            NegotiatorConfig::paper_default(net.clone()),
            TopologyKind::Parallel,
            SimOptions {
                total_rx_window: Some(50_000),
                ..SimOptions::default()
            },
        );
        sim.schedule_failure(fail_at, FailureAction::FailRandom { ratio, seed: 1 });
        sim.schedule_failure(repair_at, FailureAction::RepairAll);
        sim.run(&trace, duration);

        let rx = sim.total_rx().expect("recording enabled");
        let w = 300_000;
        let before = rx.mean_gbps(fail_at - w, fail_at);
        let during = rx.mean_gbps(repair_at - w, repair_at);
        let after = rx.mean_gbps(duration - w, duration);
        println!(
            "{:>4.0}% of links failed: {:.0} Gbps -> {:.0} Gbps ({:.1}% of pre-failure) -> {:.0} Gbps after repair",
            ratio * 100.0,
            before,
            during,
            100.0 * during / before,
            after
        );
    }
    println!("\nA failed egress or ingress fiber silences every pair whose");
    println!("round-robin slot crosses it, so bandwidth drops more than the");
    println!("raw failure ratio; the per-epoch rotation of the round-robin");
    println!("rule keeps scheduling messages flowing over surviving links.");
}
