//! Design-space tour: run every Appendix A.2 variant of the scheduler on
//! the same workload and see why the paper's minimalist design wins —
//! extra complexity does not buy proportionate performance.
//!
//! ```text
//! cargo run --release --example variants_tour
//! ```

use negotiator::{SchedulerMode, SimOptions};
use negotiator_dcn::prelude::*;

fn main() {
    let net = NetworkConfig::paper_default();
    let duration = 2_000_000;
    let trace = PoissonWorkload::new(WorkloadSpec {
        dist: FlowSizeDist::hadoop(),
        load: 0.75,
        n_tors: net.n_tors,
        host_bps: net.host_bandwidth.bps(),
    })
    .generate(duration, 21);

    let variants: Vec<(&str, SimOptions)> = vec![
        ("base (binary, stateless, 1 round)", SimOptions::default()),
        (
            "iterative x3 (A.2.1)",
            SimOptions {
                mode: SchedulerMode::Iterative { rounds: 3 },
                ..SimOptions::default()
            },
        ),
        (
            "data-size requests (A.2.3)",
            SimOptions {
                mode: SchedulerMode::DataSize,
                ..SimOptions::default()
            },
        ),
        (
            "HoL-delay requests (A.2.3)",
            SimOptions {
                mode: SchedulerMode::HolDelay { alpha: 0.001 },
                ..SimOptions::default()
            },
        ),
        (
            "stateful matrices (A.2.4)",
            SimOptions {
                mode: SchedulerMode::Stateful,
                ..SimOptions::default()
            },
        ),
        (
            "ProjecToR-style (A.2.5)",
            SimOptions {
                mode: SchedulerMode::Projector,
                ..SimOptions::default()
            },
        ),
    ];

    println!("{:<36} {:>11} {:>9}", "scheduler", "mice_p99_us", "goodput");
    for (label, opts) in variants {
        let mut sim = NegotiatorSim::with_options(
            NegotiatorConfig::paper_default(net.clone()),
            TopologyKind::Parallel,
            opts,
        );
        let mut report = sim.run(&trace, duration);
        println!(
            "{label:<36} {:>11.1} {:>9.3}",
            report.mice.p99_ns() / 1e3,
            report.goodput.normalized()
        );
    }
    println!("\nThe selective-relay variant (A.2.2) targets thin-clos; see");
    println!("`cargo run --release -p service --bin paper -- table3`.");
}
